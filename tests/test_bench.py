"""Benchmark harness and reporting tests (small sweeps, fast)."""

import pytest

from repro.bench import (FIGURES, Sample, Series, ascii_plot, crossover,
                         markdown_table, measure_barrier, measure_bcast,
                         run_figure, series_summary, table)

SIZES = [0, 2000]


def small_series():
    ser = Series(label="demo", impl="x", topology="hub", nprocs=4)
    for size, lat in [(0, 100.0), (0, 120.0), (0, 110.0),
                      (1000, 300.0), (1000, 310.0)]:
        ser.samples.append(Sample(size=size, iteration=0, latency_us=lat))
    return ser


def test_series_median_and_spread():
    ser = small_series()
    assert ser.median(0) == 110.0
    assert ser.spread(0) == (100.0, 120.0)
    assert ser.sizes == [0, 1000]
    assert ser.medians() == {0: 110.0, 1000: 305.0}


def test_series_missing_size_raises():
    with pytest.raises(KeyError):
        small_series().median(999)


def test_measure_bcast_produces_full_grid():
    ser = measure_bcast("p2p-binomial", "switch", 3, SIZES, reps=4,
                        seed=5)
    assert ser.sizes == SIZES
    for size in SIZES:
        assert len(ser.latencies(size)) == 4
        assert all(lat > 0 for lat in ser.latencies(size))


def test_measure_bcast_reproducible():
    a = measure_bcast("mcast-binary", "hub", 3, SIZES, reps=3, seed=7)
    b = measure_bcast("mcast-binary", "hub", 3, SIZES, reps=3, seed=7)
    assert a.medians() == b.medians()


def test_measure_barrier():
    ser = measure_barrier("mcast", "hub", 4, reps=5, seed=2)
    assert ser.sizes == [0]
    assert len(ser.latencies(0)) == 5


def test_crossover_finder():
    fast = Series(label="fast", impl="f", topology="hub", nprocs=2)
    slow = Series(label="slow", impl="s", topology="hub", nprocs=2)
    for size in (0, 100, 200):
        # fast is worse at 0, better from 100 up
        fast.samples.append(Sample(size, 0, 50.0 + size * 0.1))
        slow.samples.append(Sample(size, 0, 40.0 + size * 0.3))
    assert crossover(fast, slow) == 100
    assert crossover(slow, fast) == 0


def test_crossover_never():
    a, b = small_series(), small_series()
    assert crossover(a, b) is None   # identical medians: never strictly <


def test_table_renders_all_series():
    ser = small_series()
    out = table([ser], title="demo table")
    assert "demo table" in out
    assert "1000" in out and "305" in out


def test_markdown_table():
    out = markdown_table([small_series()], title="t")
    assert out.count("|") > 6
    assert "305" in out


def test_ascii_plot_smoke():
    out = ascii_plot([small_series()], width=40, height=8, title="p")
    assert "p" in out and "demo" in out


def test_series_summary():
    s = series_summary(small_series())
    assert s["overall_min"] == 100.0
    assert s["overall_max"] == 310.0
    assert s["sizes"] == [0, 1000]


def test_run_figure_unknown_id():
    with pytest.raises(KeyError, match="unknown figure"):
        run_figure("fig99")


def test_figure_registry_complete():
    assert {"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "framecounts", "ablation"} <= set(FIGURES)


@pytest.mark.slow
def test_fig7_smoke_tiny():
    series, notes = run_figure("fig7", reps=3, sizes=[0, 4000])
    assert len(series) == 3
    assert "multicast" in notes
    mpich, linear, binary = series
    # even a tiny run shows the large-message multicast win
    assert binary.median(4000) < mpich.median(4000)


def test_framecounts_figure_rows():
    rows, _ = run_figure("framecounts", nmax=6)
    # Multicast saves frames exactly when (f-1)(N-2) >= 1, i.e. for any
    # multi-frame message once there are at least 3 processes.
    for r in rows:
        if r["n"] >= 3 and r["m"] >= 1500:
            assert r["paper_mcast_bcast"] <= r["paper_mpich_bcast"], r
        if r["n"] == 2:
            # two processes: multicast pays a scout for nothing
            assert r["paper_mcast_bcast"] >= r["paper_mpich_bcast"], r


def test_cli_framecounts(capsys):
    from repro.bench.cli import main

    assert main(["--figure", "framecounts"]) == 0
    out = capsys.readouterr().out
    assert "paper_mpich_bcast" in out


def test_cli_requires_target():
    from repro.bench.cli import main

    with pytest.raises(SystemExit):
        main([])
