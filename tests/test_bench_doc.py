"""The generated benchmarks index can never go stale: regenerate
``docs/benchmarks-index.md`` from the committed ``BENCH_*.json``
baselines and diff it against the committed file (CI runs the same
check via ``make docs-check``)."""

import pathlib

from repro.bench.bench_doc import (benchmarks_index_doc,
                                   default_index_path)
from repro.bench.sweep import results_dir

REPO = pathlib.Path(__file__).parent.parent


def test_default_index_path_points_into_this_repo():
    assert default_index_path() == REPO / "docs" / "benchmarks-index.md"


def test_benchmarks_index_is_current():
    committed = default_index_path().read_text()
    assert committed == benchmarks_index_doc(), (
        "docs/benchmarks-index.md is stale — regenerate with "
        "'python -m repro.bench.cli bench-doc'")


def test_index_covers_every_committed_baseline():
    doc = benchmarks_index_doc()
    baselines = sorted(results_dir().glob("BENCH_*.json"))
    assert baselines, "no committed BENCH_*.json baselines"
    for path in baselines:
        area = path.stem[len("BENCH_"):]
        assert f"## {area}" in doc
        assert f"BENCH_{area}.json" in doc
        assert f"{area}.md" in doc


def test_index_empty_results_dir_fallback(tmp_path):
    doc = benchmarks_index_doc(results=tmp_path)
    assert "No committed `BENCH_*.json` baselines yet" in doc


def test_cli_check_mode_detects_staleness(tmp_path, capsys):
    from repro.bench.cli import main

    target = tmp_path / "benchmarks-index.md"
    assert main(["bench-doc", "--output", str(target)]) == 0
    assert main(["bench-doc", "--check", "--output",
                 str(target)]) == 0
    target.write_text(target.read_text() + "\nstale edit\n")
    assert main(["bench-doc", "--check", "--output",
                 str(target)]) == 1
