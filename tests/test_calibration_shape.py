"""Calibration-shape tests: the DESIGN.md §5 targets, as fast checks.

These pin the *shape* claims the whole reproduction rests on, with small
sweeps (3 sizes, few reps) so they run in the unit-test budget.  The
full-resolution versions live in ``benchmarks/``.
"""

import pytest

from repro.bench import crossover, measure_barrier, measure_bcast

REPS = 8


@pytest.fixture(scope="module")
def hub4():
    sizes = [0, 1000, 5000]
    return {
        "mpich": measure_bcast("p2p-binomial", "hub", 4, sizes, REPS, 1),
        "binary": measure_bcast("mcast-binary", "hub", 4, sizes, REPS, 2),
        "linear": measure_bcast("mcast-linear", "hub", 4, sizes, REPS, 3),
    }


def test_absolute_magnitudes_in_era_band(hub4):
    """DESIGN.md §5: MPICH/hub/4p ≈ 350-450 µs at 0 B and ≈ 1700-2100 µs
    at 5 kB on the paper's platform; we accept a generous band around
    those read-offs (this pins gross mis-calibration, not exact µs)."""
    assert 250 <= hub4["mpich"].median(0) <= 500
    assert 1200 <= hub4["mpich"].median(5000) <= 2200
    assert 600 <= hub4["binary"].median(5000) <= 1100


def test_small_message_ordering(hub4):
    """At 0 B the scouts make multicast the slower choice."""
    assert hub4["mpich"].median(0) < hub4["binary"].median(0)


def test_large_message_ordering(hub4):
    for impl in ("binary", "linear"):
        assert hub4[impl].median(5000) < 0.75 * hub4["mpich"].median(5000)


def test_crossover_band(hub4):
    for impl in ("binary", "linear"):
        x = crossover(hub4[impl], hub4["mpich"])
        assert x is not None and x <= 2000


def test_barrier_ordering_and_scaling():
    mpich9 = measure_barrier("p2p-mpich", "hub", 9, reps=REPS, seed=4)
    mcast9 = measure_barrier("mcast", "hub", 9, reps=REPS, seed=5)
    mpich3 = measure_barrier("p2p-mpich", "hub", 3, reps=REPS, seed=6)
    mcast3 = measure_barrier("mcast", "hub", 3, reps=REPS, seed=7)
    assert mcast9.median(0) < mpich9.median(0)
    assert mcast3.median(0) < mpich3.median(0)
    gap3 = mpich3.median(0) - mcast3.median(0)
    gap9 = mpich9.median(0) - mcast9.median(0)
    assert gap9 > gap3


def test_switch_storeforward_costs_more_for_multicast():
    sizes = [0, 4000]
    hub = measure_bcast("mcast-binary", "hub", 4, sizes, REPS, 8)
    sw = measure_bcast("mcast-binary", "switch", 4, sizes, REPS, 9)
    for size in sizes:
        assert hub.median(size) < sw.median(size)


def test_mpich_scaling_with_process_count():
    sizes = [5000]
    m3 = measure_bcast("p2p-binomial", "switch", 3, sizes, REPS, 10)
    m9 = measure_bcast("p2p-binomial", "switch", 9, sizes, REPS, 11)
    l3 = measure_bcast("mcast-linear", "switch", 3, sizes, REPS, 12)
    l9 = measure_bcast("mcast-linear", "switch", 9, sizes, REPS, 13)
    # MPICH pays ~(N-1) copies; multicast pays ~constant + scouts.
    mpich_growth = m9.median(5000) / m3.median(5000)
    linear_growth = l9.median(5000) / l3.median(5000)
    assert mpich_growth > 1.8
    assert linear_growth < 1.5
