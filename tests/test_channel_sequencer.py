"""Direct unit tests for McastChannel and the sequencer variant."""


from repro.core.channel import (DATA_PORT_BASE, GROUP_ID_BASE,
                                SCOUT_PORT_BASE)
from repro.runtime import FixedSkew, run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH
from repro.simnet.frame import mcast_mac

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_channel_ports_and_group_derive_from_ctx():
    captured = {}

    def main(env):
        ch = env.comm.mcast
        captured[env.rank] = (ch.group, ch.data_port, ch.scout_port)
        yield env.sim.timeout(0.0)

    run_spmd(2, main, params=QUIET)
    group, dport, sport = captured[0]
    assert group == mcast_mac(GROUP_ID_BASE + 0)     # world ctx = 0
    assert dport == DATA_PORT_BASE
    assert sport == SCOUT_PORT_BASE
    assert captured[0] == captured[1]                # all ranks agree


def test_channel_distinct_per_communicator():
    def main(env):
        sub = yield from env.comm.dup()
        a, b = env.comm.mcast, sub.mcast
        return (a.group != b.group and a.data_port != b.data_port
                and a.scout_port != b.scout_port)

    result = run_spmd(2, main, params=QUIET)
    assert all(result.returns)


def test_channel_seq_advances_in_lockstep():
    def main(env):
        env.comm.use_collectives(bcast="mcast-binary", barrier="mcast")
        for i in range(3):
            yield from env.comm.bcast("x" if env.rank == 0 else None, 0)
        yield from env.comm.barrier()
        return env.comm.mcast.seq

    result = run_spmd(4, main, params=QUIET)
    # 3 bcasts + 1 barrier = 4 collective sequences on every rank
    assert result.returns == [4] * 4


def test_scout_stash_keeps_early_arrivals():
    """A scout for a future (seq, phase) must be stashed and later
    matched, not dropped."""
    log = {}

    def main(env):
        ch = env.comm.mcast
        if env.rank == 1:
            # send two scouts out of order: seq 8 then seq 7
            yield from ch.send_scout(0, 8, phase="up")
            yield from ch.send_scout(0, 7, phase="up")
        else:
            yield env.sim.timeout(3000.0)
            missing7 = yield from ch.wait_scouts({1}, 7, phase="up")
            missing8 = yield from ch.wait_scouts({1}, 8, phase="up")
            log["missing"] = (missing7, missing8)

    run_spmd(2, main, params=QUIET)
    assert log["missing"] == (set(), set())


def test_wait_scouts_timeout_reports_missing():
    def main(env):
        ch = env.comm.mcast
        if env.rank == 0:
            missing = yield from ch.wait_scouts({1}, 1, phase="up",
                                                timeout_us=500.0)
            return missing
        yield env.sim.timeout(0.0)   # rank 1 never scouts

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[0] == {1}


def test_channel_close_idempotent_and_frees_ports():
    def main(env):
        ch = env.comm.mcast
        ch.close()
        ch.close()             # second close is a no-op
        # ports are free again on this host (close the probe socket so
        # it doesn't trip the REPRO_SANITIZE teardown check itself)
        env.host.socket(ch.data_port).close()
        yield env.sim.timeout(0.0)

    run_spmd(2, main, params=QUIET)


def test_comm_free_closes_channel():
    def main(env):
        sub = yield from env.comm.dup()
        _ = sub.mcast
        sub.free()
        sub.free()             # idempotent
        yield env.sim.timeout(0.0)
        return True

    result = run_spmd(2, main, params=QUIET)
    assert all(result.returns)


# ---------------------------------------------------------------- sequencer
def test_sequencer_root_is_sequencer_fast_path():
    """When the root IS the sequencer there is no forwarding hop."""
    marks = {}

    def main(env):
        obj = "direct" if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        return (yield from env.comm.bcast(obj, root=0))

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-sequencer"})
    assert result.returns == ["direct"] * 4
    kb = marks["before"]["frames_by_kind"]
    ka = result.stats["frames_by_kind"]
    # no p2p forwarding when root == sequencer
    assert ka.get("p2p", 0) - kb.get("p2p", 0) == 0


def test_sequencer_nonroot_pays_forwarding_hop():
    marks = {}

    def main(env):
        obj = "forwarded" if env.rank == 2 else None
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        return (yield from env.comm.bcast(obj, root=2))

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-sequencer"})
    assert result.returns == ["forwarded"] * 4
    kb = marks["before"]["frames_by_kind"]
    ka = result.stats["frames_by_kind"]
    assert ka.get("p2p", 0) - kb.get("p2p", 0) >= 1   # root -> sequencer


def test_sequencer_total_order_across_roots():
    """The sequencer's raison d'être: one total order for all roots."""
    roots = [3, 1, 2, 3, 0]

    def main(env):
        got = []
        for i, root in enumerate(roots):
            obj = (root, i) if env.rank == root else None
            got.append((yield from env.comm.bcast(obj, root=root)))
        return got

    result = run_spmd(4, main, params=QUIET, seed=5,
                      skew=FixedSkew([0.0, 2000.0, 500.0, 1500.0]),
                      collectives={"bcast": "mcast-sequencer"})
    expected = [(root, i) for i, root in enumerate(roots)]
    assert all(r == expected for r in result.returns)


def test_sequencer_retransmits_to_late_receiver():
    def main(env):
        if env.rank == 3:
            yield env.sim.timeout(5000.0)
        obj = "late-ok" if env.rank == 0 else None
        return (yield from env.comm.bcast(obj, root=0))

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-sequencer"})
    assert result.returns == ["late-ok"] * 4
    assert result.stats["retransmissions"] >= 1


def test_scout_stash_stays_bounded_over_many_collectives():
    """Regression: duplicate scouts whose (seq, phase) wait had already
    been satisfied were stashed forever — the stash grew without bound
    across collectives.  Stale entries must be purged when draining and
    satisfied duplicates must not be stashed at all."""

    def main(env):
        ch = env.comm.mcast
        high = 0
        for _ in range(100):
            seq = ch.next_seq()
            if env.rank == 1:
                # a duplicate ack: the second copy can never match
                yield from ch.send_scout(0, seq, "ack")
                yield from ch.send_scout(0, seq, "ack")
            if env.rank == 0:
                missing = yield from ch.wait_scouts({1}, seq, "ack")
                assert not missing
            high = max(high, len(ch._scout_stash))
            yield from env.comm.barrier()     # p2p: keeps ranks in step
        return high

    result = run_spmd(2, main, params=QUIET)
    # a couple of in-flight entries are fine; linear growth is the bug
    assert max(result.returns) <= 4
