"""The chaos suite's own contract: crisp failures, honest hang dumps,
bit-identical replay.

Three properties pinned here:

* a receiver cut off mid-collective aborts after ``max_repair_rounds``
  repair rounds with a typed :class:`~repro.core.rounds.McastLost`
  (the regression for the round-engine livelock: before the knob the
  engine kept repairing to ``max_retransmits`` — 40 rounds — with an
  untyped error at the end);
* a trunk partitioned mid-broadcast surfaces as the typed
  :class:`~repro.simnet.fabric.PartitionError` whose flight-recorder
  hang dump names the open follow round and its missing-segment set;
* the fuzzer's records — including the CRCs of the per-case stats
  snapshot and the failure artifact — are identical across reruns and
  worker counts, so every printed ``(seed, case index)`` replays bit
  for bit.
"""

from dataclasses import replace

import pytest

from repro import run_spmd
from repro.chaos import timed_fault
from repro.chaos.fuzz import make_case, run_case, run_fuzz
from repro.core.rounds import McastLost
from repro.obs.trace import FlightRecorder
from repro.runtime.sanitize import forced_teardown
from repro.simnet import PartitionError, quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


# ----------------------------------------------------- bounded repair
def test_max_repair_rounds_converts_livelock_to_typed_failure():
    """A follower that can never be repaired (its host eats every data
    frame) must abort after the configured number of repair rounds —
    not orbit the old 40-round retransmit ceiling."""
    params = replace(QUIET, max_repair_rounds=2)

    def eat_data(dgram):
        return "drop" if dgram.kind == "mcast-seg" else None

    def on_cluster(cluster):
        cluster.hosts[3].frame_fate = eat_data

    def main(env):
        data = b"x" * 8000 if env.rank == 0 else None
        out = yield from env.comm.bcast(data, root=0)
        return len(out)

    # whichever rank's abort dispatches first propagates: the root says
    # "gave up after 2 repair rounds", a told follower "root gave up"
    with pytest.raises(McastLost, match="gave up"):
        run_spmd(4, main, params=params,
                 collectives={"bcast": "mcast-seg-nack"},
                 on_cluster=on_cluster)


def test_repair_round_limit_defaults_to_retransmit_ceiling():
    from repro.core.rounds import repair_round_limit

    assert repair_round_limit(QUIET) == QUIET.max_retransmits
    assert repair_round_limit(replace(QUIET, max_repair_rounds=5)) == 5


# ------------------------------------------------- partition hang dump
def test_trunk_partition_mid_bcast_dumps_open_round():
    """Cut the trunk under leaf 1 mid-broadcast: the run fails with the
    typed PartitionError naming the downed trunk, and the hang dump
    lists the far followers' open round with its missing segments."""
    recorder = FlightRecorder()

    def on_cluster(cluster):
        recorder.attach(cluster)
        timed_fault(cluster, "cut", 3000.0,
                    lambda: cluster.fabric.partition_trunk((1,)))

    def main(env):
        data = b"y" * 30_000 if env.rank == 0 else None
        out = yield from env.comm.bcast(data, root=0)
        return len(out)

    with pytest.raises(PartitionError, match="trunk") as info:
        run_spmd(4, main, topology="tree:2x2", params=QUIET,
                 collectives={"bcast": "mcast-seg-nack"},
                 on_cluster=on_cluster)

    exc = info.value
    dump = recorder.hang_report
    assert dump is not None
    assert "open rounds" in dump
    assert "follow:seq" in dump
    # at least one follower lists a non-empty missing-segment set
    assert any("missing=[" in line and "missing=[]" not in line
               for line in dump.splitlines() if "follow:seq" in line)
    # the injected fault window was recorded (so dumps can tell an
    # injected cut from a protocol bug)
    assert any(ev[2] == "chaos" and ev[3] == "fault:cut"
               for ev in recorder.events)

    # heal, then the forced teardown must still leave nothing behind
    exc.repro_cluster.fabric.heal_trunk((1,))
    forced_teardown(exc.repro_cluster, exc.repro_world)


# -------------------------------------------------- replay determinism
def _canonical(records):
    return [(r["index"], r["key"], r["outcome"], r["error"],
             r["stats_crc"], r["artifact_crc"], tuple(r["violations"]))
            for r in records]


def test_fuzz_records_replay_bit_identically():
    first, ok1 = run_fuzz(seed=5, budget=10)
    again, ok2 = run_fuzz(seed=5, budget=10)
    assert ok1 and ok2
    assert _canonical(first) == _canonical(again)
    # a single case replayed in isolation gives the very same record
    solo = run_case(make_case(5, 7), base_seed=5)
    assert _canonical([solo]) == _canonical([first[7]])


def test_fuzz_records_identical_across_worker_counts():
    serial, _ = run_fuzz(seed=5, budget=8)
    parallel, _ = run_fuzz(seed=5, budget=8, workers=2)
    assert _canonical(serial) == _canonical(parallel)


def test_forced_partitions_fail_crisply_and_reproduce():
    """Every trunk-partition case either completes (the op beat the
    cut) or fails with a typed error + deterministic artifact — and the
    whole batch reruns to identical records."""
    first, ok1 = run_fuzz(seed=3, budget=6, scenario="trunk-partition")
    again, ok2 = run_fuzz(seed=3, budget=6, scenario="trunk-partition")
    assert ok1 and ok2
    assert _canonical(first) == _canonical(again)
    failed = [r for r in first if r["outcome"] == "failed-crisp"]
    assert failed, "expected at least one crisp partition failure"
    for rec in failed:
        assert rec["error"] is not None
        assert rec["artifact_crc"] is not None


def test_case_generation_is_budget_independent():
    assert make_case(9, 4) == make_case(9, 4)
    # case i never depends on how many other cases the run draws
    keys = [make_case(9, i).key for i in range(12)]
    assert len(set(keys)) == 12
