"""Communicator teardown: ``free()`` after ``dup``/``split`` must emit
IGMP leaves that shrink the switches' snooped member sets, and no stale
group entry may keep forwarding frames toward a freed communicator."""

from repro import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)

#: time for a leave to traverse host uplink (+ trunks) and be snooped
SETTLE_US = 5000.0


def test_free_after_dup_shrinks_snooped_members():
    def main(env):
        dup = yield from env.comm.dup()
        out = yield from dup.bcast(b"d" if env.rank == 0 else None, 0)
        group = dup.mcast.group
        switch = env.comm.world.cluster.switch
        yield from env.comm.barrier()     # all ranks used the dup group
        before = len(switch.members_of(group))
        yield from env.comm.barrier()     # nobody frees before sampling
        dup.free()
        yield env.sim.timeout(SETTLE_US)  # leaves reach the switch
        after = switch.members_of(group)
        return out, before, sorted(after)

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    for out, before, after in result.returns:
        assert out == b"d"
        assert before == 4      # every member port was snooped
        assert after == []      # every leave was snooped too


def test_free_after_split_shrinks_both_halves():
    def main(env):
        half = yield from env.comm.split(env.rank // 2, key=env.rank)
        out = yield from half.bcast(
            half.rank if half.rank == 0 else None, 0)
        group = half.mcast.group
        switch = env.comm.world.cluster.switch
        yield from env.comm.barrier()
        before = len(switch.members_of(group))
        yield from env.comm.barrier()     # nobody frees before sampling
        half.free()
        yield env.sim.timeout(SETTLE_US)
        after = len(switch.members_of(group))
        # the world group must be untouched by subcomm teardown
        world_members = len(switch.members_of(env.comm.mcast.group))
        yield from env.comm.barrier()     # world still fully usable
        return out, before, after, world_members

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    assert result.returns == [(0, 2, 0, 4)] * 4


def test_freed_group_entry_forwards_no_frames():
    """The switch keeps a registered-but-empty entry for a freed group:
    a stray frame to it must be dropped, not flooded to anyone."""
    def main(env):
        dup = yield from env.comm.dup()
        yield from dup.bcast(b"x" if env.rank == 0 else None, 0)
        group, port = dup.mcast.group, dup.mcast.data_port
        yield from env.comm.barrier()
        dup.free()
        yield env.sim.timeout(SETTLE_US)
        stats = env.host.stats
        if env.rank == 1:
            # blast the freed group from a fresh socket
            before = stats.snapshot()
            sock = env.host.socket()
            yield from sock.sendto(b"stale", 64, group, port,
                                   kind="stale")
            yield env.sim.timeout(SETTLE_US)
            diff = stats.diff(before)
            sock.close()
            # the frame went up our link and died at the switch:
            # no forwards, no deliveries, no flood
            return (diff["frames_by_kind"].get("stale", 0),
                    diff["frames_forwarded"], diff["frames_delivered"])
        yield env.sim.timeout(2 * SETTLE_US)
        return None

    result = run_spmd(3, main, params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    assert result.returns[1] == (1, 0, 0)


def test_free_is_idempotent_and_world_survives():
    def main(env):
        dup = yield from env.comm.dup()
        yield from dup.barrier()
        dup.free()
        dup.free()                       # second free is a no-op
        out = yield from env.comm.bcast(
            "still-alive" if env.rank == 2 else None, 2)
        return out

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == ["still-alive"] * 3


def test_free_on_tree_fabric_shrinks_core_and_leaves():
    """Leaves propagate across trunks: the core's and the remote leaf's
    member sets must shrink along with the local leaf's."""
    def main(env):
        dup = yield from env.comm.dup()
        yield from dup.bcast(b"t" if env.rank == 0 else None, 0)
        group = dup.mcast.group
        fabric = env.comm.world.cluster.fabric
        yield from env.comm.barrier()
        before = (len(fabric.core.members_of(group)),
                  len(fabric.leaves[0].members_of(group)),
                  len(fabric.leaves[1].members_of(group)))
        yield from env.comm.barrier()     # nobody frees before sampling
        dup.free()
        yield env.sim.timeout(2 * SETTLE_US)
        after = (len(fabric.core.members_of(group)),
                 len(fabric.leaves[0].members_of(group)),
                 len(fabric.leaves[1].members_of(group)))
        return before, after

    result = run_spmd(4, main, topology="tree:2x2", params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    for before, after in result.returns:
        # core: both trunks; leaf: 2 hosts + trunk (remote interest)
        assert before == (2, 3, 3)
        assert after == (0, 0, 0)


def test_free_after_dup_shrinks_members_across_two_trunk_hops():
    """Three-tier fabric (PR 5): a freed dup's IGMP leaves must cross
    *two* trunk hops and shrink the snooped member sets at every tier —
    leaf, mid switch, and core."""
    def main(env):
        dup = yield from env.comm.dup()
        yield from dup.bcast(b"d" if env.rank == 0 else None, 0)
        group = dup.mcast.group
        fabric = env.comm.world.cluster.fabric
        mid0 = fabric.nodes[(0,)]
        yield from env.comm.barrier()
        before = (len(fabric.core.members_of(group)),
                  len(mid0.members_of(group)),
                  len(fabric.leaves[0].members_of(group)),
                  len(fabric.leaves[3].members_of(group)))
        yield from env.comm.barrier()     # nobody frees before sampling
        dup.free()
        yield env.sim.timeout(3 * SETTLE_US)
        after = (len(fabric.core.members_of(group)),
                 len(mid0.members_of(group)),
                 len(fabric.leaves[0].members_of(group)),
                 len(fabric.leaves[3].members_of(group)))
        return before, after

    result = run_spmd(8, main, topology="tree:2x2x2", params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    for before, after in result.returns:
        # core: its two mid trunks; mid0: uplink + two leaf trunks;
        # leaf: 2 host ports + uplink (remote interest)
        assert before == (2, 3, 3, 3)
        assert after == (0, 0, 0, 0)


def test_free_after_split_deep_tree_keeps_other_groups_intact():
    """Freeing one split half on a 3-tier fabric releases only its own
    hier and flat groups: the world group and the surviving half stay
    fully snooped across every trunk tier."""
    def main(env):
        half = yield from env.comm.split(env.rank // 4, key=env.rank)
        half.use_collectives(bcast="hier-mcast")
        out = yield from half.bcast(
            bytes(4000) if half.rank == 0 else None, 0)
        seg_group = half._hier.seg_comm.mcast.group \
            if half._hier.seg_comm is not None else None
        flat_group = half.mcast.group
        fabric = env.comm.world.cluster.fabric
        my_leaf = fabric.leaves[
            env.comm.world.cluster.segment_of(env.host.addr)]
        yield from env.comm.barrier()
        before = (len(my_leaf.members_of(flat_group)),
                  len(my_leaf.members_of(seg_group)))
        yield from env.comm.barrier()     # nobody frees before sampling
        if env.rank < 4:
            half.free()                   # only the first half frees
        yield env.sim.timeout(3 * SETTLE_US)
        after = (len(my_leaf.members_of(flat_group)),
                 len(my_leaf.members_of(seg_group)))
        world_ok = len(my_leaf.members_of(env.comm.mcast.group)) > 0
        yield from env.comm.barrier()     # world still fully usable
        return len(out), before, after, world_ok

    result = run_spmd(8, main, topology="tree:2x2x2", params=QUIET)
    for rank, (n, before, after, world_ok) in enumerate(result.returns):
        assert n == 4000 and world_ok
        assert before[0] > 0 and before[1] > 0
        if rank < 4:
            assert after == (0, 0), (rank, after)
        else:
            assert after[0] > 0 and after[1] > 0
