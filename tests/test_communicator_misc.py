"""Communicator plumbing: contexts, dup nesting, validation."""

import pytest

from repro.mpi.collective.registry import REGISTRY, get_impl, register
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_ctx_split_pt2pt_vs_collective():
    """User p2p and collective-internal traffic use different contexts,
    so a user recv can never match a collective-internal message."""

    def main(env):
        assert env.comm.ctx_pt2pt != env.comm.ctx_coll
        if env.rank == 0:
            # a user message with the same tag a collective would use
            yield from env.comm.send("user", dest=1, tag=1)
        else:
            data = yield from env.comm.recv(source=0, tag=1)
            # interleave a collective to stress the separation
            yield from env.comm.barrier()
            return data
        yield from env.comm.barrier()

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == "user"


def test_nested_dup_contexts_unique():
    def main(env):
        a = yield from env.comm.dup()
        b = yield from a.dup()
        c = yield from env.comm.dup()
        ctxs = {env.comm.ctx, a.ctx, b.ctx, c.ctx}
        return len(ctxs)

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [4] * 3


def test_nested_split_of_split():
    def main(env):
        half = yield from env.comm.split(color=env.rank // 2,
                                         key=env.rank)
        solo = yield from half.split(color=half.rank, key=0)
        return (half.size, solo.size)

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [(2, 1)] * 4


def test_dup_inherits_collective_config():
    def main(env):
        env.comm.use_collectives(bcast="mcast-binary")
        dup = yield from env.comm.dup()
        # the dup uses the multicast broadcast too — verify via frame mix
        obj = "inherit" if env.rank == 0 else None
        out = yield from dup.bcast(obj, root=0)
        return out

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == ["inherit"] * 3
    assert result.stats["frames_by_kind"].get("mcast-data", 0) >= 1


def test_use_collectives_unknown_name_raises():
    def main(env):
        with pytest.raises(KeyError):
            env.comm.use_collectives(bcast="warp-speed")
        yield env.sim.timeout(0.0)

    run_spmd(1, main, params=QUIET)


def test_use_collectives_returns_self_for_chaining():
    def main(env):
        same = env.comm.use_collectives(bcast="mcast-linear")
        assert same is env.comm
        yield env.sim.timeout(0.0)

    run_spmd(1, main, params=QUIET)


def test_addr_of_maps_ranks_to_hosts():
    def main(env):
        yield env.sim.timeout(0.0)
        return [env.comm.addr_of(r) for r in range(env.size)]

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [[0, 1, 2]] * 3


def test_split_subcomm_rank_addressing():
    """A sub-communicator's rank 0 can live on any host."""

    def main(env):
        # reversed key: sub rank 0 = old rank 2
        sub = yield from env.comm.split(color=0, key=-env.rank)
        data = "from-sub-root" if sub.rank == 0 else None
        data = yield from sub.bcast(data, root=0)
        return (sub.rank, data)

    result = run_spmd(3, main, params=QUIET)
    assert result.returns[2][0] == 0
    assert all(d == "from-sub-root" for _r, d in result.returns)


def test_registry_register_and_lookup():
    @register("bcast", "test-noop")
    def _noop(comm, obj, root=0):
        yield comm.sim.timeout(0.0)
        return obj

    assert get_impl("bcast", "test-noop") is _noop
    with pytest.raises(KeyError, match="no implementation"):
        get_impl("bcast", "not-there")
    # an unknown *op* lists the valid op names, not an empty impl list
    with pytest.raises(KeyError, match=r"known ops: .*'bcast'"):
        get_impl("frobnicate", "x")
    del REGISTRY["bcast"]["test-noop"]


def test_rank_range_checks_on_collectives():
    def main(env):
        with pytest.raises(ValueError):
            env.comm.bcast("x", root=9).send(None)  # prime the generator
        yield env.sim.timeout(0.0)

    run_spmd(2, main, params=QUIET)


def test_sixtyfour_rank_world_smoke():
    """The stack holds up well beyond the paper's nine machines."""

    def main(env):
        total = yield from env.comm.allreduce(1, __import__(
            "repro.mpi", fromlist=["SUM"]).SUM)
        return total

    result = run_spmd(32, main, params=QUIET)
    assert result.returns == [32] * 32
