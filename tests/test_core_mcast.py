"""Tests for the paper's contribution: collectives over IP multicast."""

import pytest

from repro.core import McastLost, barrier_mcast_message_count
from repro.core.scout import binary_tree_steps, scout_count
from repro.runtime import FixedSkew, run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH)

QUIET_SW = quiet(FAST_ETHERNET_SWITCH)
QUIET_HUB = quiet(FAST_ETHERNET_HUB)

SIZES = [1, 2, 3, 4, 6, 7, 8, 9]
SCOUTED = ["mcast-binary", "mcast-linear"]
RELIABLE = SCOUTED + ["mcast-ack", "mcast-sequencer"]


# ---------------------------------------------------------------- formulas
def test_scout_count_is_n_minus_1():
    assert [scout_count(n) for n in (1, 2, 7, 9)] == [0, 1, 6, 8]


def test_binary_tree_steps_is_ceil_log2():
    assert [binary_tree_steps(n) for n in (1, 2, 3, 4, 7, 8, 9)] \
        == [0, 1, 2, 2, 3, 3, 4]


def test_barrier_mcast_message_count():
    assert barrier_mcast_message_count(1) == (0, 0)
    assert barrier_mcast_message_count(9) == (8, 1)


# ---------------------------------------------------------------- correctness
@pytest.mark.parametrize("impl", RELIABLE)
@pytest.mark.parametrize("n", SIZES)
def test_mcast_bcast_delivers_everywhere(impl, n):
    def main(env):
        obj = {"blob": "x" * 100} if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return obj["blob"]

    result = run_spmd(n, main, params=QUIET_SW,
                      collectives={"bcast": impl})
    assert result.returns == ["x" * 100] * n


@pytest.mark.parametrize("impl", RELIABLE)
@pytest.mark.parametrize("topology", ["hub", "switch"])
def test_mcast_bcast_both_topologies(impl, topology):
    def main(env):
        obj = list(range(500)) if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return sum(obj)

    result = run_spmd(5, main, topology=topology,
                      collectives={"bcast": impl})
    assert result.returns == [sum(range(500))] * 5


@pytest.mark.parametrize("impl", RELIABLE)
@pytest.mark.parametrize("root", [0, 1, 4, 6])
def test_mcast_bcast_nonzero_root(impl, root):
    def main(env):
        obj = f"root={root}" if env.rank == root else None
        obj = yield from env.comm.bcast(obj, root=root)
        return obj

    result = run_spmd(7, main, params=QUIET_SW,
                      collectives={"bcast": impl})
    assert result.returns == [f"root={root}"] * 7


@pytest.mark.parametrize("impl", SCOUTED)
def test_mcast_bcast_sequence_of_many(impl):
    """Back-to-back broadcasts must not cross sequence numbers."""

    def main(env):
        got = []
        for i in range(10):
            obj = i * 100 if env.rank == 0 else None
            got.append((yield from env.comm.bcast(obj, root=0)))
        return got

    result = run_spmd(6, main, params=QUIET_SW,
                      collectives={"bcast": impl})
    assert result.returns == [[i * 100 for i in range(10)]] * 6


def test_naive_bcast_works_without_skew():
    """With lockstep ranks, even naive multicast happens to work —
    receivers posted during MPI init barrier before the root's send."""

    def main(env):
        obj = "lucky" if env.rank == 0 else None
        return (yield from env.comm.bcast(obj, root=0))

    result = run_spmd(4, main, params=QUIET_SW,
                      collectives={"bcast": "mcast-naive"})
    assert result.returns == ["lucky"] * 4


def test_naive_bcast_loses_slow_receiver():
    """A receiver that enters the collective late misses the datagram —
    the paper's §2 unreliability, reproduced."""

    def main(env):
        env.comm.mcast.naive_timeout_us = 20000.0
        if env.rank == 2:
            yield env.sim.timeout(5000.0)    # slow rank: still computing
        obj = "gone" if env.rank == 0 else None
        try:
            data = yield from env.comm.bcast(obj, root=0)
            return ("ok", data)
        except McastLost:
            return ("lost", None)

    result = run_spmd(4, main, params=QUIET_SW,
                      collectives={"bcast": "mcast-naive"})
    assert result.returns[0] == ("ok", "gone")
    assert result.returns[1] == ("ok", "gone")
    assert result.returns[2] == ("lost", None)
    assert result.returns[3] == ("ok", "gone")
    assert result.stats["drops_not_posted"] >= 1


@pytest.mark.parametrize("impl", SCOUTED)
def test_scouted_bcast_survives_slow_receiver(impl):
    """The scout handshake makes the same scenario lossless."""

    def main(env):
        if env.rank == 2:
            yield env.sim.timeout(5000.0)
        obj = "safe" if env.rank == 0 else None
        return (yield from env.comm.bcast(obj, root=0))

    result = run_spmd(4, main, params=QUIET_SW,
                      collectives={"bcast": impl})
    assert result.returns == ["safe"] * 4
    assert result.stats["drops_not_posted"] == 0


def test_ack_bcast_retransmits_to_late_receiver():
    """PVM-style reliability: the late rank is caught by a retransmission
    (costing extra payload frames — the paper's argument against it)."""

    def main(env):
        if env.rank == 2:
            yield env.sim.timeout(5000.0)    # miss the first transmission
        obj = "retry" if env.rank == 0 else None
        return (yield from env.comm.bcast(obj, root=0))

    result = run_spmd(4, main, params=QUIET_SW,
                      collectives={"bcast": "mcast-ack"})
    assert result.returns == ["retry"] * 4
    assert result.stats["retransmissions"] >= 1
    assert result.stats["drops_not_posted"] >= 1   # the lost first copy


@pytest.mark.parametrize("n", SIZES)
def test_mcast_barrier_synchronizes(n):
    def main(env):
        yield env.sim.timeout(100.0 * env.rank)
        entered = env.sim.now
        yield from env.comm.barrier()
        return (entered, env.sim.now)

    result = run_spmd(n, main, params=QUIET_HUB, topology="hub",
                      collectives={"barrier": "mcast"})
    last_entry = max(e for e, _l in result.returns)
    for _entered, left in result.returns:
        assert left >= last_entry


def test_mcast_barrier_sequence():
    def main(env):
        for _ in range(5):
            yield from env.comm.barrier()
        return env.sim.now

    result = run_spmd(6, main, params=QUIET_SW,
                      collectives={"barrier": "mcast"})
    assert all(t > 0 for t in result.returns)


# ---------------------------------------------------------------- frame counts
QUIESCE_US = 50_000.0


def _bcast_frames(impl, n, nbytes, topology="switch"):
    """Network frame deltas for exactly one bcast of nbytes, n ranks.

    All ranks idle until an absolute time well past MPI init, so every
    init frame has drained; the broadcast is then the *only* traffic and
    the end-of-run totals minus the pre-broadcast snapshot isolate it.
    """
    marks = {}

    def main(env):
        obj = bytes(nbytes) if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, QUIESCE_US - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        obj = yield from env.comm.bcast(obj, root=0)
        return len(obj)

    params = quiet(FAST_ETHERNET_SWITCH if topology == "switch"
                   else FAST_ETHERNET_HUB)
    result = run_spmd(n, main, params=params, topology=topology,
                      collectives={"bcast": impl})
    assert result.returns == [nbytes] * n
    kinds_b = marks["before"]["frames_by_kind"]
    kinds_a = result.stats["frames_by_kind"]
    return {k: kinds_a.get(k, 0) - kinds_b.get(k, 0)
            for k in set(kinds_a) | set(kinds_b)}


def test_mcast_binary_frame_count_formula():
    """(N-1) scouts + floor(M/T)+1 data frames (paper §3.1)."""
    n, m = 7, 5000
    delta = _bcast_frames("mcast-binary", n, m)
    assert delta.get("scout", 0) == n - 1
    assert delta.get("mcast-data", 0) == 4          # 5000 B -> 4 frames
    assert delta.get("p2p", 0) == 0                 # bypasses MPICH layers


def test_mcast_linear_frame_count_formula():
    n, m = 9, 3000
    delta = _bcast_frames("mcast-linear", n, m)
    assert delta.get("scout", 0) == n - 1
    assert delta.get("mcast-data", 0) == 3
    assert delta.get("p2p", 0) == 0


def test_mpich_bcast_frame_count_formula():
    """(floor(M/T)+1) * (N-1) data frames (paper §3)."""
    n, m = 7, 5000
    delta = _bcast_frames("p2p-binomial", n, m)
    assert delta.get("p2p", 0) == 4 * (n - 1)
    assert delta.get("mcast-data", 0) == 0
    assert delta.get("scout", 0) == 0


def test_paper_claim_frame_savings_at_7_nodes():
    """Paper: 'With 7 nodes, the multicast implementation only requires
    one-third of actual data frames compared to current MPICH.'

    Data frames alone scale as 1/(N-1) = 1/6; counting the six scout
    frames too, the *total* is exactly one-third of MPICH's at a ~7.5 KB
    message (6 scouts + 6 data = 12 vs 36) and keeps shrinking beyond.
    """
    n, m = 7, 7500
    mpich = _bcast_frames("p2p-binomial", n, m).get("p2p", 0)
    delta = _bcast_frames("mcast-binary", n, m)
    data = delta.get("mcast-data", 0)
    scouts = delta.get("scout", 0)
    assert mpich == 36
    assert data * (n - 1) == mpich              # 1/6 of data frames
    assert 3 * (data + scouts) == mpich         # 1/3 of total frames


def test_mcast_barrier_frame_counts():
    n = 9
    marks = {}

    def main(env):
        env.comm.use_collectives(barrier="mcast")
        yield env.sim.timeout(max(0.0, QUIESCE_US - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        yield from env.comm.barrier()

    result = run_spmd(n, main, params=QUIET_SW)
    kinds_b = marks["before"]["frames_by_kind"]
    kinds_a = result.stats["frames_by_kind"]
    delta = {k: kinds_a.get(k, 0) - kinds_b.get(k, 0)
             for k in set(kinds_a) | set(kinds_b)}
    assert delta.get("scout", 0) == n - 1       # N-1 p2p scouts
    assert delta.get("mcast-release", 0) == 1   # single release multicast
    assert delta.get("mcast-data", 0) == 0


# ---------------------------------------------------------------- invariants
@pytest.mark.parametrize("impl", SCOUTED)
def test_root_multicast_never_precedes_last_post(impl):
    """The central safety property: with scout sync, no multicast data
    frame is dropped for lack of a posted receive, under any skew."""

    def main(env):
        obj = "inv" if env.rank == 3 else None
        return (yield from env.comm.bcast(obj, root=3))

    skews = FixedSkew([0.0, 4000.0, 800.0, 100.0, 2500.0, 50.0])
    result = run_spmd(6, main, params=QUIET_SW, skew=skews,
                      collectives={"bcast": impl})
    assert result.returns == ["inv"] * 6
    assert result.stats["drops_not_posted"] == 0


def test_mixed_collectives_mcast_bcast_p2p_barrier():
    def main(env):
        env.comm.use_collectives(bcast="mcast-binary")
        out = []
        for i in range(3):
            obj = i if env.rank == 0 else None
            out.append((yield from env.comm.bcast(obj, root=0)))
            yield from env.comm.barrier()    # p2p barrier interleaved
        return out

    result = run_spmd(5, main, params=QUIET_SW)
    assert result.returns == [[0, 1, 2]] * 5
