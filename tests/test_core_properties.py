"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing guarantees of the reproduction:

1. **delivery** — scout-synchronized multicast broadcast delivers the
   payload to every rank, for any cluster size, topology, payload size,
   skew, and seed (no drops, ever);
2. **frame economy** — the wire cost is exactly (N-1) scouts + one
   fragmented payload, never more (paper §3.1's whole point);
3. **barrier synchrony** — no rank exits before the last rank enters;
4. **order** — any (safe) schedule of broadcast roots arrives in program
   order at every rank;
5. **fragmentation** — datagram fragmentation is exact and minimal for
   any size.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import model_mcast_bcast_frames
from repro.runtime import FixedSkew, run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH)
from repro.simnet.ip import fragment_sizes

QUIET_SW = quiet(FAST_ETHERNET_SWITCH)
QUIET_HUB = quiet(FAST_ETHERNET_HUB)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=25, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=9),
    size=st.integers(min_value=0, max_value=8000),
    topology=st.sampled_from(["hub", "switch"]),
    impl=st.sampled_from(["mcast-binary", "mcast-linear"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_scouted_bcast_always_delivers(n, size, topology, impl, seed):
    def main(env):
        obj = bytes(size) if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return len(obj)

    result = run_spmd(n, main, topology=topology, seed=seed,
                      collectives={"bcast": impl})
    assert result.returns == [size] * n
    assert result.stats["drops_not_posted"] == 0
    assert result.stats["drops_buffer_full"] == 0


@settings(max_examples=20, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=9),
    size=st.integers(min_value=0, max_value=8000),
    skews=st.lists(st.floats(min_value=0.0, max_value=5000.0),
                   min_size=9, max_size=9),
)
def test_scouted_bcast_immune_to_skew(n, size, skews):
    """Arbitrary per-rank start delays never cause loss (the paper's
    central claim for scout synchronization)."""

    def main(env):
        obj = bytes(size) if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return len(obj)

    result = run_spmd(n, main, params=QUIET_SW,
                      skew=FixedSkew(skews[:n]),
                      collectives={"bcast": "mcast-binary"})
    assert result.returns == [size] * n
    assert result.stats["drops_not_posted"] == 0


@settings(max_examples=20, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=9),
    size=st.integers(min_value=0, max_value=6000),
)
def test_mcast_frame_economy_exact(n, size):
    """Exactly (N-1) scout frames + frames_for(payload) data frames."""
    marks = {}

    def main(env):
        obj = bytes(size) if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        yield from env.comm.bcast(obj, root=0)

    result = run_spmd(n, main, params=QUIET_SW,
                      collectives={"bcast": "mcast-binary"})
    kinds_b = marks["before"]["frames_by_kind"]
    kinds_a = result.stats["frames_by_kind"]
    delta = {k: kinds_a.get(k, 0) - kinds_b.get(k, 0)
             for k in set(kinds_a) | set(kinds_b)}
    scouts, data = model_mcast_bcast_frames(QUIET_SW, n, size)
    assert delta.get("scout", 0) == scouts
    assert delta.get("mcast-data", 0) == data
    assert delta.get("p2p", 0) == 0


@settings(max_examples=15, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=9),
    barrier=st.sampled_from(["mcast", "p2p-mpich"]),
    entry_gaps=st.lists(st.floats(min_value=0.0, max_value=2000.0),
                        min_size=9, max_size=9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_barrier_synchrony_property(n, barrier, entry_gaps, seed):
    """No rank leaves the barrier before the last rank has entered."""

    def main(env):
        yield env.sim.timeout(entry_gaps[env.rank])
        entered = env.sim.now
        yield from env.comm.barrier()
        return (entered, env.sim.now)

    result = run_spmd(n, main, topology="hub", seed=seed,
                      collectives={"barrier": barrier})
    last_entry = max(e for e, _l in result.returns)
    assert all(left >= last_entry for _e, left in result.returns)


@settings(max_examples=15, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=7),
    roots=st.lists(st.integers(min_value=0, max_value=6), min_size=1,
                   max_size=8),
    impl=st.sampled_from(["mcast-binary", "mcast-linear"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_bcast_order_property(n, roots, impl, seed):
    """Safe schedules of broadcasts arrive in program order (paper §4)."""
    roots = [r % n for r in roots]

    def main(env):
        got = []
        for i, root in enumerate(roots):
            obj = (root, i) if env.rank == root else None
            got.append((yield from env.comm.bcast(obj, root=root)))
        return got

    result = run_spmd(n, main, seed=seed, collectives={"bcast": impl})
    expected = [(root, i) for i, root in enumerate(roots)]
    assert all(r == expected for r in result.returns)


@settings(max_examples=100, **COMMON)
@given(size=st.integers(min_value=0, max_value=200_000))
def test_fragmentation_exact_and_minimal(size):
    p = QUIET_SW
    sizes = fragment_sizes(p, size)
    user = sum(sizes) - p.ip_header * len(sizes) - p.udp_header
    assert user == size
    assert len(sizes) == p.frames_for(size)
    assert all(0 < s <= p.mtu for s in sizes)
    # minimality: one fewer frame could not carry the payload
    if len(sizes) > 1:
        capacity = (p.max_udp_payload
                    + (len(sizes) - 2) * p.max_fragment_payload)
        assert size > capacity


@settings(max_examples=30, **COMMON)
@given(
    n=st.integers(min_value=1, max_value=9),
    op_objs=st.lists(st.integers(min_value=-1000, max_value=1000),
                     min_size=9, max_size=9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_allreduce_agrees_with_python_sum(n, op_objs, seed):
    from repro.mpi import SUM

    def main(env):
        return (yield from env.comm.allreduce(op_objs[env.rank], SUM))

    result = run_spmd(n, main, params=QUIET_SW, seed=seed)
    assert result.returns == [sum(op_objs[:n])] * n
