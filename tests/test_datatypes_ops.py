"""Datatypes, payload sizing and reduction operators."""

import numpy as np
import pytest

from repro.mpi import (BAND, BOR, BYTE, DOUBLE, INT, LAND, LOR, MAX,
                       MAXLOC, MIN, MINLOC, PROD, SUM, datatype_of,
                       payload_bytes)


def test_basic_datatype_sizes():
    assert INT.size == 4
    assert DOUBLE.size == 8
    assert BYTE.size == 1


def test_datatype_of_numpy():
    assert datatype_of(np.zeros(3, dtype=np.int32)) is INT
    assert datatype_of(np.zeros(3, dtype=np.float64)) is DOUBLE
    assert datatype_of(np.zeros(3, dtype=np.uint8)) is BYTE


def test_datatype_of_unsupported():
    with pytest.raises(TypeError):
        datatype_of(np.zeros(3, dtype=np.float16))


def test_payload_bytes_buffers_exact():
    assert payload_bytes(b"12345") == 5
    assert payload_bytes(bytearray(10)) == 10
    assert payload_bytes(memoryview(b"abc")) == 3
    assert payload_bytes(np.zeros(100, dtype=np.float64)) == 800


def test_payload_bytes_objects_pickle_sized():
    small = payload_bytes({"k": 1})
    large = payload_bytes({"k": list(range(1000))})
    assert 0 < small < large


def test_sum_prod_numbers_and_arrays():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6
    out = SUM(np.array([1, 2]), np.array([10, 20]))
    assert out.tolist() == [11, 22]


def test_max_min_scalars_and_arrays():
    assert MAX(2, 9) == 9
    assert MIN(2, 9) == 2
    assert MAX(np.array([1, 9]), np.array([5, 2])).tolist() == [5, 9]
    assert MIN(np.array([1, 9]), np.array([5, 2])).tolist() == [1, 2]


def test_logical_ops():
    assert LAND(1, 0) is False
    assert LAND(1, 2) is True
    assert LOR(0, 0) is False
    assert LOR(0, 3) is True
    assert LAND(np.array([True, True]),
                np.array([True, False])).tolist() == [True, False]


def test_bitwise_ops():
    assert BAND(0b1100, 0b1010) == 0b1000
    assert BOR(0b1100, 0b1010) == 0b1110


def test_maxloc_minloc_tie_breaks_to_lower_index():
    assert MAXLOC((5, 2), (5, 7)) == (5, 2)
    assert MAXLOC((5, 7), (5, 2)) == (5, 2)
    assert MAXLOC((9, 7), (5, 2)) == (9, 7)
    assert MINLOC((3, 4), (3, 1)) == (3, 1)
    assert MINLOC((1, 4), (3, 1)) == (1, 4)


def test_ops_repr():
    assert repr(SUM) == "MPI.SUM"
    assert repr(INT) == "MPI.INT"


def test_ops_are_associative_spotcheck():
    for op in (SUM, PROD, MAX, MIN, BAND, BOR):
        a, b, c = 5, 9, 12
        assert op(op(a, b), c) == op(a, op(b, c))
