"""Recursive multi-tier fabrics: the extended topology grammar,
multi-level discovery, per-tier trunk parameters, IGMP snooping across
several trunk hops, and the probabilistic NetParams.loss wiring."""

from dataclasses import replace

import pytest

from repro import run_spmd
from repro.simnet import build_cluster, parse_topology, quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH
from repro.simnet.fabric import FabricSpec, path_trunk_hops

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))


# ------------------------------------------------------------ parsing
def test_parse_topology_deep_and_heterogeneous():
    deep = parse_topology("tree:2x2x2")
    assert deep == FabricSpec(4, 2, branching=(2, 2))
    assert deep.n == 8 and deep.depth == 2
    assert deep.leaf_paths() == [(0, 0), (0, 1), (1, 0), (1, 1)]
    het = parse_topology("tree:[4,8,2]")
    assert het.segments == 3 and het.leaf_sizes == (4, 8, 2)
    assert het.n == 14 and het.hosts_per_segment == 0
    # a uniform bracket list equals its SxH spelling
    assert parse_topology("tree:[4,4]") == parse_topology("tree:2x4")
    # the two-tier spelling is the depth-1 special case, unchanged
    assert parse_topology("tree:2x4") == FabricSpec(2, 4)


def test_parse_topology_rejects_degenerate_deep_specs():
    with pytest.raises(ValueError):
        parse_topology("tree:2x0x2")
    with pytest.raises(ValueError):
        parse_topology("tree:[4,0]")
    with pytest.raises(ValueError):
        FabricSpec(2, 4, branching=(3,))   # 3 != 2 segments


def test_path_trunk_hops():
    assert path_trunk_hops((0,), (0,)) == 0
    assert path_trunk_hops((0,), (1,)) == 2
    assert path_trunk_hops((0, 0), (0, 1)) == 2
    assert path_trunk_hops((0, 0), (1, 1)) == 4
    assert path_trunk_hops((0, 0, 0), (1, 0, 0)) == 6


# ------------------------------------------------------------ discovery
def test_deep_cluster_discovery_api():
    cluster = build_cluster(8, topology="tree:2x2x2", params=QUIET)
    assert cluster.nsegments == 4
    assert cluster.fabric.depth == 2
    assert [cluster.segment_of(a) for a in range(8)] == \
        [0, 0, 1, 1, 2, 2, 3, 3]
    assert cluster.segment_path(0) == (0, 0)
    assert cluster.segment_path(3) == (1, 1)
    assert cluster.trunk_hops(0, 1) == 0    # same leaf
    assert cluster.trunk_hops(0, 2) == 2    # sibling leaves
    assert cluster.trunk_hops(0, 7) == 4    # across the core
    matrix = cluster.trunk_distance_matrix()
    assert matrix[1][2] == 2 and matrix[0][4] == 4
    # switch census: core + 2 mids + 4 leaves
    assert len(cluster.fabric.nodes) == 7
    assert len(cluster.fabric.leaves) == 4


def test_heterogeneous_cluster_discovery():
    cluster = build_cluster(14, topology="tree:[4,8,2]", params=QUIET)
    assert cluster.nsegments == 3
    assert cluster.segment_members(1) == list(range(4, 12))
    assert cluster.trunk_hops(0, 13) == 2
    assert cluster.segment_path(2) == (2,)
    with pytest.raises(ValueError, match="exactly 14 hosts"):
        build_cluster(9, topology="tree:[4,8,2]", params=QUIET)


# ------------------------------------------------- per-tier trunk params
def test_per_tier_trunk_params_govern_their_tier():
    """A slow *core* tier stretches only traffic crossing the core."""
    def main(env):
        data = bytes(40_000) if env.rank == 0 else None
        data = yield from env.comm.bcast(data, 0)
        return len(data)

    fast = run_spmd(8, main, topology="tree:2x2x2", params=QUIET,
                    collectives={"bcast": "mcast-binary"})
    slow_core = run_spmd(
        8, main, topology="tree:2x2x2", params=QUIET,
        trunk_params=[replace(QUIET, rate_mbps=10.0), QUIET],
        collectives={"bcast": "mcast-binary"})
    assert slow_core.sim_time_us > fast.sim_time_us * 2
    assert fast.returns == slow_core.returns == [40_000] * 8


# ------------------------------------------------- snooping across tiers
def test_snooping_diffuses_across_three_tiers():
    """After world setup on a 3-tier tree, every switch on the path
    knows exactly which ports face members."""
    def main(env):
        yield from env.comm.barrier()
        if env.rank == 0:
            fabric = env.comm.world.cluster.fabric
            group = env.comm.mcast.group
            env.records["core"] = sorted(
                fabric.core.members_of(group))
            mid = fabric.nodes[(0,)]
            env.records["mid"] = sorted(mid.members_of(group))
            env.records["leaf"] = sorted(
                fabric.leaves[0].members_of(group))
        return True

    result = run_spmd(8, main, topology="tree:2x2x2", params=QUIET)
    rec = result.records[0]
    # core: one member port per interested mid switch
    assert len(rec["core"]) == 2
    # mid (0,): uplink + two leaf ports all front members
    assert len(rec["mid"]) == 3
    # leaf0: its two host ports plus the uplink (remote interest)
    assert len(rec["leaf"]) == 3


def test_multicast_crosses_only_needed_trunk_edges_on_deep_tree():
    """A sub-communicator confined to one mid switch's subtree never
    pays the core tier: its multicast frames stay below mid (0,)."""
    def main(env):
        sub = yield from env.comm.split(env.rank // 4, key=env.rank)
        sub.use_collectives(bcast="mcast-binary")
        before = env.comm.world.cluster.stats.snapshot()
        data = yield from sub.bcast(
            b"x" * 900 if sub.rank == 0 else None, 0)
        yield from sub.barrier()
        diff = env.comm.world.cluster.stats.diff(before)
        return len(data), diff["trunk_frames_by_kind"].get(
            "mcast-data", 0)

    result = run_spmd(8, main, topology="tree:2x2x2", params=QUIET)
    lens = {length for length, _t in result.returns}
    assert lens == {900}
    # both 4-rank halves broadcast one single-frame payload: each
    # crosses exactly the two trunks under its own mid switch (up +
    # down), never the core — stats are global, so every rank observes
    # the same total
    totals = {t for _l, t in result.returns}
    assert totals == {4}


# ------------------------------------------------------- loss wiring
def test_netparams_loss_drops_for_real_and_is_repaired():
    lossy = replace(AUTO, loss=0.08)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        data = yield from env.comm.bcast(
            bytes(96_000) if env.rank == 0 else None, 0)
        return len(data)

    result = run_spmd(4, main, params=lossy, seed=3)
    assert result.returns == [96_000] * 4
    assert result.stats["drops_lossy"] > 0
    assert result.stats["retransmissions"] > 0
    # deterministic: same seed, same drops
    again = run_spmd(4, main, params=lossy, seed=3)
    assert again.stats["drops_lossy"] == result.stats["drops_lossy"]
    # independent of the jitter stream: loss off, zero lossy drops
    clean = run_spmd(4, main, params=AUTO, seed=3)
    assert clean.stats["drops_lossy"] == 0


def test_loss_only_touches_mcast_seg_data():
    """Control traffic (scouts, reports, decisions) and p2p must never
    be lossy — only the repairable multicast data path is."""
    lossy = replace(QUIET, loss=0.5)

    def main(env):
        # p2p collectives + the p2p barrier: no mcast-seg traffic
        data = yield from env.comm.bcast(
            b"y" * 5000 if env.rank == 0 else None, 0)
        yield from env.comm.barrier()
        return len(data)

    result = run_spmd(4, main, params=lossy, seed=1)
    assert result.returns == [5000] * 4
    assert result.stats["drops_lossy"] == 0


def test_slow_trunks_do_not_livelock_the_repair_loop():
    """Regression: the drain timeout must price store-and-forward hops
    at the trunks' own tier rates — with a backbone 20x slower than the
    edge, a far receiver must not NACK data still crossing the core
    (which used to livelock the repair loop until max_retransmits)."""
    slow = replace(AUTO, rate_mbps=AUTO.rate_mbps / 20)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack",
                                 gather="hier-mcast")
        out = yield from env.comm.bcast(
            bytes(96_000) if env.rank == 0 else None, 0)
        got = yield from env.comm.gather(len(out), 0)
        return got if env.rank == 0 else out is not None

    result = run_spmd(8, main, topology="tree:2x2x2", params=AUTO,
                      trunk_params=slow)
    assert result.returns[0] == [96_000] * 8
    assert result.stats["retransmissions"] == 0
    # per-tier params: only the core tier slow
    tiered = run_spmd(8, main, topology="tree:2x2x2", params=AUTO,
                      trunk_params=[slow, AUTO])
    assert tiered.returns[0] == [96_000] * 8
    assert tiered.stats["retransmissions"] == 0
