"""Bit-for-bit determinism of seeded lossy runs, and the
``REPRO_SANITIZE`` leak checks that keep them trustworthy.

The DET01 lint rule bans the nondeterminism *sources* (wall clocks,
unseeded RNGs, set-order iteration); this test pins down the observable
contract: an identically-seeded run over a lossy multi-tier fabric —
drops, NACKs, repair rounds and all — reproduces the exact same network
statistics and finishing time."""

from dataclasses import replace

import pytest

from repro.mpi.ops import SUM
from repro.runtime.program import run_spmd
from repro.runtime.sanitize import (LeakError, check_quiesced,
                                    drain_pending, full_teardown)
from repro.simnet.calibration import FAST_ETHERNET_SWITCH, quiet

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_seeded_lossy_fabric_run_is_reproducible():
    def run():
        def main(env):
            env.comm.use_collectives(allreduce="mcast-seg-nack",
                                     bcast="mcast-seg-nack")
            payload = bytes([env.rank % 251]) * 24_000
            out = yield from env.comm.allreduce(len(payload), SUM)
            data = yield from env.comm.bcast(
                payload if env.rank == 0 else None, 0)
            return (out, len(data))

        return run_spmd(8, main, topology="tree:2x2x2",
                        params=replace(QUIET, loss=0.05), seed=1234)

    r1, r2 = run(), run()
    assert r1.returns == r2.returns == [(8 * 24_000, 24_000)] * 8
    # loss really happened (repairs exercised), yet both runs agree on
    # every counter and on the clock
    assert r1.stats["drops_lossy"] > 0
    assert r1.stats == r2.stats
    assert r1.sim_time_us == r2.sim_time_us


# --------------------------------------------------- sanitizer itself
def test_check_quiesced_flags_leaked_posted_recv():
    from repro.runtime.sanitize import sanitize_enabled

    def main(env):
        if env.rank == 0:
            sock = env.host.socket(23456, posted_only=True)
            sock.post_recv()       # repro-lint: skip=LEAK01 -- the leak is this test's point
        yield from env.comm.barrier()

    if sanitize_enabled():
        # armed runs fail inside run_spmd itself — the real gate
        with pytest.raises(LeakError, match="posted receive"):
            run_spmd(2, main, params=QUIET)
        return
    result = run_spmd(2, main, params=QUIET)
    drain_pending()                # this run never reaches a teardown
    with pytest.raises(LeakError, match="posted receive"):
        check_quiesced(result.cluster)


def test_full_teardown_leaves_nothing_and_flags_stragglers():
    def main(env):
        data = yield from env.comm.bcast(
            "x" if env.rank == 0 else None, 0)
        return data

    result = run_spmd(4, main, topology="tree:2x2", params=QUIET,
                      collectives={"bcast": "hier-mcast"})
    drain_pending()
    check_quiesced(result.cluster)             # phase 1 passes
    full_teardown(result.cluster, result.world)
    host = result.cluster.hosts[0]
    assert host.ipstack._sockets == {}
    assert host.ipstack._memberships == {}
    assert host.nic._mcast_refs == {}
    # a socket opened *after* teardown is a straggler the checker sees
    from repro.simnet.frame import mcast_mac
    straggler = host.socket(34567)
    straggler.join(mcast_mac(900))
    with pytest.raises(LeakError, match="sockets still bound"):
        full_teardown(result.cluster, result.world)
    straggler.close()
