"""Dissemination barrier: correctness and comparison to the alternatives."""

import pytest

from repro.bench import measure_barrier
from repro.mpi.collective.barrier_p2p import dissemination_message_count
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_dissemination_message_count():
    assert dissemination_message_count(1) == 0
    assert dissemination_message_count(2) == 2
    assert dissemination_message_count(8) == 24
    assert dissemination_message_count(9) == 36
    with pytest.raises(ValueError):
        dissemination_message_count(0)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 8, 9])
def test_dissemination_synchronizes(n):
    def main(env):
        yield env.sim.timeout(150.0 * env.rank)
        entered = env.sim.now
        yield from env.comm.barrier()
        return (entered, env.sim.now)

    result = run_spmd(n, main, params=QUIET,
                      collectives={"barrier": "p2p-dissemination"})
    last_entry = max(e for e, _l in result.returns)
    assert all(left >= last_entry for _e, left in result.returns)


def test_dissemination_repeated_rounds_no_crosstalk():
    def main(env):
        for _ in range(8):
            yield from env.comm.barrier()
        return env.sim.now

    result = run_spmd(6, main, params=QUIET,
                      collectives={"barrier": "p2p-dissemination"})
    assert all(t > 0 for t in result.returns)


def test_multicast_still_beats_best_p2p_barrier():
    """The paper compares against MPICH's barrier; the dissemination
    barrier is the stronger p2p opponent (fewer critical-path rounds for
    non-powers-of-two).  The multicast barrier still wins at 9 procs on
    the hub — its release is ONE frame."""
    dis = measure_barrier("p2p-dissemination", "hub", 9, reps=10, seed=3)
    mpich = measure_barrier("p2p-mpich", "hub", 9, reps=10, seed=4)
    mcast = measure_barrier("mcast", "hub", 9, reps=10, seed=5)
    # dissemination beats the three-phase barrier at non-power-of-two N
    assert dis.median(0) < mpich.median(0) * 1.1
    # and multicast beats both
    assert mcast.median(0) < dis.median(0)
    assert mcast.median(0) < mpich.median(0)
