"""Every example must run clean — examples are documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)


def test_quickstart_runs():
    proc = _run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "mcast-binary" in proc.stdout
    assert "p2p-binomial" in proc.stdout


@pytest.mark.slow
def test_compare_broadcast_runs():
    proc = _run("compare_broadcast.py", "--reps", "4")
    assert proc.returncode == 0, proc.stderr
    assert "beats mpich from" in proc.stdout
    assert "hub" in proc.stdout and "switch" in proc.stdout


@pytest.mark.slow
def test_barrier_scaling_runs():
    proc = _run("barrier_scaling.py")
    assert proc.returncode == 0, proc.stderr
    assert "speedup" in proc.stdout
    # 8 process counts = 8 table rows with an 'x' speedup column
    assert proc.stdout.count("x") >= 8


def test_ordered_groups_runs():
    proc = _run("ordered_groups.py")
    assert proc.returncode == 0, proc.stderr
    assert "ORDER VIOLATION" not in proc.stdout
    assert "unsafe schedule rejected" in proc.stdout


def test_wire_timeline_runs():
    proc = _run("wire_timeline.py")
    assert proc.returncode == 0, proc.stderr
    assert "mcast-data" in proc.stdout
    assert "scout" in proc.stdout


@pytest.mark.slow
def test_parallel_jacobi_runs():
    proc = _run("parallel_jacobi.py")
    assert proc.returncode == 0, proc.stderr
    assert "numerics identical" in proc.stdout


def test_hier_cluster_runs():
    proc = _run("hier_cluster.py")
    assert proc.returncode == 0, proc.stderr
    assert "2 segments" in proc.stdout
    assert "leader: rank 4" in proc.stdout
    # the example prints flat-vs-hier per-call trunk frames; the
    # hierarchy must win (same claim the fabric bench asserts)
    lines = [ln.split() for ln in proc.stdout.splitlines()
             if "mcast-seg-nack" in ln or "hier-mcast" in ln]
    counts = {name: int(n) for name, n, *_rest in lines}
    assert counts["hier-mcast"] < counts["mcast-seg-nack"]


def test_deep_fabric_runs():
    proc = _run("deep_fabric.py")
    assert proc.returncode == 0, proc.stderr
    assert "4 segments, 3 switch tiers" in proc.stdout
    assert "leaders of leaders" in proc.stdout
    # the recursive hierarchy: a core group and one per mid switch
    assert "group at core: leader ranks [0, 4]" in proc.stdout
    assert "group at switch (1,): leader ranks [4, 6]" in proc.stdout
    # flat-vs-hier per-call trunk frames; the hierarchy must win
    lines = [ln.split() for ln in proc.stdout.splitlines()
             if "mcast-seg-root-follow" in ln or "hier-mcast" in ln]
    counts = {name: int(n) for name, n, *_rest in lines}
    assert counts["hier-mcast"] < counts["mcast-seg-root-follow"]


@pytest.mark.realnet
def test_real_multicast_runs():
    proc = _run("real_multicast.py")
    assert proc.returncode == 0, proc.stderr
    # either it validated, or it politely skipped
    assert ("validated against the real network stack" in proc.stdout
            or "skipping demo" in proc.stdout)
