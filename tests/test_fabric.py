"""Multi-segment fabric: topology strings, discovery API, trunk
accounting, and IGMP snooping across tiers."""

import pytest

from _invariants import assert_quiesced
from repro import run_spmd
from repro.simnet import build_cluster, parse_topology, quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH
from repro.simnet.fabric import FabricSpec
from repro.simnet.frame import Frame, mcast_mac
from repro.simnet.kernel import Simulator
from repro.simnet.link import HalfLink
from repro.simnet.stats import NetStats
from repro.simnet.switchdev import Switch

QUIET = quiet(FAST_ETHERNET_SWITCH)


# ------------------------------------------------------------ parsing
def test_parse_topology_tree():
    assert parse_topology("tree:2x4") == FabricSpec(2, 4)
    assert parse_topology("tree:3x3") == FabricSpec(3, 3)
    assert parse_topology("switch") is None
    assert parse_topology("hub") is None
    assert parse_topology("ring:4") is None


def test_parse_topology_rejects_degenerate():
    with pytest.raises(ValueError):
        parse_topology("tree:0x4")


def test_build_cluster_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown topology"):
        build_cluster(4, topology="mesh:2x2", params=QUIET)
    with pytest.raises(ValueError, match="exactly 8 hosts"):
        build_cluster(6, topology="tree:2x4", params=QUIET)


# ------------------------------------------------------------ discovery
def test_tree_cluster_discovery_api():
    cluster = build_cluster(8, topology="tree:2x4", params=QUIET)
    assert cluster.nsegments == 2
    assert [cluster.segment_of(a) for a in range(8)] == [0] * 4 + [1] * 4
    assert cluster.segment_members(0) == [0, 1, 2, 3]
    assert cluster.segment_members(1) == [4, 5, 6, 7]
    assert cluster.trunk_hops(0, 3) == 0
    assert cluster.trunk_hops(0, 4) == 2
    matrix = cluster.trunk_distance_matrix()
    assert matrix[1][2] == 0 and matrix[2][6] == 2 and matrix[6][2] == 2
    assert len(cluster.fabric.leaves) == 2
    assert cluster.fabric.core.trunk_ports == [0, 1]
    with pytest.raises(ValueError):
        cluster.segment_of(99)
    with pytest.raises(ValueError):
        cluster.segment_members(5)


def test_flat_cluster_discovery_degrades_to_one_segment():
    cluster = build_cluster(3, topology="switch", params=QUIET)
    assert cluster.nsegments == 1
    assert cluster.segment_of(2) == 0
    assert cluster.segment_members(0) == [0, 1, 2]
    assert cluster.trunk_hops(0, 2) == 0
    assert cluster.trunk_distance_matrix() == [[0] * 3] * 3
    with pytest.raises(ValueError):
        cluster.segment_of(9)
    with pytest.raises(ValueError):
        cluster.segment_members(1)


# ------------------------------------------------------------ switch tier
def _mk_switch():
    sim = Simulator()
    stats = NetStats()
    return sim, Switch(sim, QUIET, stats=stats)


def test_trunk_membership_is_refcounted():
    """A trunk port fronts many downstream members: it must stay in the
    member set until every join has been matched by a leave."""
    sim, sw = _mk_switch()
    sink = HalfLink(sim, QUIET, sw.stats, deliver=lambda f: None)
    host_port = sw.add_port(sink)
    trunk_port = sw.add_port(sink, trunk=True)
    group = mcast_mac(7)

    def igmp(op, port):
        sw.receive(port, Frame(src=90 + port, dst=group, size=28,
                               payload=(op, group), kind="igmp"))

    igmp("join", trunk_port)
    igmp("join", trunk_port)
    igmp("join", host_port)
    assert sw.members_of(group) == {host_port, trunk_port}
    igmp("leave", trunk_port)
    assert sw.members_of(group) == {host_port, trunk_port}
    igmp("leave", trunk_port)
    assert sw.members_of(group) == {host_port}
    igmp("leave", host_port)
    assert sw.members_of(group) == set()
    # registered-but-empty: dropped, not flooded
    sw.receive(host_port, Frame(src=1, dst=group, size=64,
                                payload=None, kind="data"))
    sim.run()
    assert sw.frames_flooded == 0


def test_leave_for_unknown_group_does_not_register_it():
    """A stray leave must not flip a group from flood to drop."""
    sim, sw = _mk_switch()
    got = []
    sink = HalfLink(sim, QUIET, sw.stats, deliver=got.append,
                    count_as_send=False)
    p0 = sw.add_port(sink)
    sw.add_port(sink)
    group = mcast_mac(11)
    sw.receive(p0, Frame(src=1, dst=group, size=28,
                         payload=("leave", group), kind="igmp"))
    assert sw.members_of(group) == set()
    # unregistered: still floods (default switch behaviour)
    sw.receive(p0, Frame(src=1, dst=group, size=64,
                         payload=None, kind="data"))
    sim.run()
    assert sw.frames_flooded == 1
    assert len(got) == 1


def test_igmp_propagates_only_out_trunk_ports():
    """Hosts never see membership reports (report suppression); other
    switches do."""
    sim, sw = _mk_switch()
    host_got, trunk_got = [], []
    host_link = HalfLink(sim, QUIET, sw.stats,
                         deliver=host_got.append, count_as_send=False)
    trunk_link = HalfLink(sim, QUIET, sw.stats,
                          deliver=trunk_got.append, count_as_send=False,
                          is_trunk=True)
    host_port = sw.add_port(host_link)
    sw.add_port(trunk_link, trunk=True)
    group = mcast_mac(9)
    sw.receive(host_port, Frame(src=1, dst=group, size=28,
                                payload=("join", group), kind="igmp"))
    sim.run()
    assert host_got == []
    assert len(trunk_got) == 1 and trunk_got[0].kind == "igmp"


def test_snooping_diffuses_across_the_fabric():
    """After world setup on a tree, the core knows both segments are
    members and each leaf knows the outside world is interested."""
    def main(env):
        yield from env.comm.barrier()
        if env.rank == 0:
            cluster = env.comm.world.cluster
            group = env.comm.mcast.group
            core, leaves = cluster.fabric.core, cluster.fabric.leaves
            env.records["core"] = sorted(core.members_of(group))
            env.records["leaf0"] = sorted(leaves[0].members_of(group))
        return True

    result = run_spmd(8, main, topology="tree:2x4", params=QUIET)
    assert all(result.returns)
    # core: one member port per interested segment (its two trunk ports)
    assert result.records[0]["core"] == [0, 1]
    # leaf0: its four host ports plus the trunk (remote interest)
    assert len(result.records[0]["leaf0"]) == 5


def test_multicast_crosses_each_trunk_once_per_segment():
    """One multicast bcast on a 2-segment tree crosses the sender's
    uplink once and each interested downstream trunk once — never once
    per member."""
    def main(env):
        data = b"x" * 900 if env.rank == 0 else None
        data = yield from env.comm.bcast(data, 0)
        return len(data)

    one = run_spmd(8, lambda env: main(env), topology="tree:2x4",
                   params=QUIET,
                   collectives={"bcast": "mcast-binary"}).stats

    def main2(env):
        for _ in range(2):
            yield from main(env)

    result = run_spmd(8, main2, topology="tree:2x4", params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    two = result.stats
    delta = (two["trunk_frames_by_kind"]["mcast-data"]
             - one["trunk_frames_by_kind"]["mcast-data"])
    assert delta == 2  # up from leaf0, down to leaf1 — not 4 (members)
    # cross-trunk multicast must also clean up across every ledger tier
    assert_quiesced(result.cluster, result.world)


def test_trunk_params_govern_trunk_serialization():
    """A 10x slower trunk slows only cross-segment traffic."""
    from dataclasses import replace

    def main(env):
        data = bytes(40_000) if env.rank == 0 else None
        data = yield from env.comm.bcast(data, 0)
        return len(data)

    fast = run_spmd(4, main, topology="tree:2x2", params=QUIET,
                    collectives={"bcast": "mcast-binary"})
    slow = run_spmd(4, main, topology="tree:2x2", params=QUIET,
                    trunk_params=replace(QUIET, rate_mbps=10.0),
                    collectives={"bcast": "mcast-binary"})
    assert slow.sim_time_us > fast.sim_time_us * 2
    assert fast.returns == slow.returns == [40_000] * 4


def test_flat_switch_has_no_trunk_frames():
    def main(env):
        yield from env.comm.barrier()
        return True

    result = run_spmd(4, main, params=QUIET)
    assert result.stats["frames_trunk"] == 0
    assert result.stats["trunk_frames_by_kind"] == {}
