"""Two load-bearing properties, tested against reference models.

1. **FIFO per path** — both the hub and the switch must deliver frames
   of one (src, dst) pair in send order; MPI's non-overtaking guarantee
   (and hence all collective matching) rests on this.
2. **split correctness** — ``Communicator.split`` must agree with a pure
   Python reference for arbitrary colors and keys.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import run_spmd
from repro.simnet import build_cluster, quiet
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=20, **COMMON)
@given(
    topology=st.sampled_from(["hub", "switch"]),
    sizes=st.lists(st.integers(min_value=0, max_value=4000),
                   min_size=1, max_size=15),
    seed=st.integers(min_value=0, max_value=2**31),
    n_hosts=st.integers(min_value=2, max_value=5),
)
def test_fifo_per_src_dst_path(topology, sizes, seed, n_hosts):
    """Datagrams from host 0 to host 1 arrive in send order, regardless
    of fragmentation, contention from other hosts, or topology."""
    params = quiet(FAST_ETHERNET_HUB if topology == "hub"
                   else FAST_ETHERNET_SWITCH)
    cl = build_cluster(n_hosts, topology, params=params, seed=seed)
    sim = cl.sim
    rx = cl.hosts[1].socket(100)
    tx = cl.hosts[0].socket(101)
    got = []

    def sender():
        for i, size in enumerate(sizes):
            yield from tx.sendto(i, size, dst=1, dst_port=100)

    def receiver():
        for _ in sizes:
            d = yield from rx.recv()
            got.append(d.payload)

    def noise(host):
        sock = host.socket(102)
        for j in range(3):
            yield from sock.sendto(("noise", j), 500, dst=0, dst_port=103)

    sim.process(sender())
    sim.process(receiver())
    for host in cl.hosts[2:]:
        sim.process(noise(host))
    # a sink for the noise so it isn't counted as drops
    cl.hosts[0].socket(103)
    sim.run()
    assert got == list(range(len(sizes)))


def _reference_split(n, colors, keys):
    """Pure-Python model of MPI_Comm_split."""
    out = {}
    for color in {c for c in colors if c is not None}:
        members = sorted((keys[r], r) for r in range(n)
                         if colors[r] == color)
        ranks = [r for _k, r in members]
        for new_rank, old_rank in enumerate(ranks):
            out[old_rank] = (color, new_rank, ranks)
    return out


@settings(max_examples=15, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=6),
    colors_raw=st.lists(st.integers(min_value=-1, max_value=2),
                        min_size=6, max_size=6),
    keys=st.lists(st.integers(min_value=-5, max_value=5),
                  min_size=6, max_size=6),
)
def test_split_matches_reference(n, colors_raw, keys):
    colors = [None if c == -1 else c for c in colors_raw[:n]]
    reference = _reference_split(n, colors, keys)

    def main(env):
        sub = yield from env.comm.split(color=colors[env.rank],
                                        key=keys[env.rank])
        if sub is None:
            return None
        members = yield from sub.allgather(env.rank)
        return (colors[env.rank], sub.rank, members)

    result = run_spmd(n, main, params=quiet(FAST_ETHERNET_SWITCH))
    for rank in range(n):
        if colors[rank] is None:
            assert result.returns[rank] is None
        else:
            assert result.returns[rank] == reference[rank]


@settings(max_examples=10, **COMMON)
@given(
    n=st.integers(min_value=2, max_value=5),
    depth=st.integers(min_value=1, max_value=3),
)
def test_nested_dups_all_usable(n, depth):
    """Arbitrarily nested duplicates remain independent and functional."""

    def main(env):
        comms = [env.comm]
        for _ in range(depth):
            comms.append((yield from comms[-1].dup()))
        totals = []
        for c in comms:
            from repro.mpi import SUM

            totals.append((yield from c.allreduce(1, SUM)))
        return totals

    result = run_spmd(n, main, params=quiet(FAST_ETHERNET_SWITCH))
    assert result.returns == [[n] * (depth + 1)] * n
