"""The analytic fluid backend and the speed-overhaul parity contracts.

Two families of guarantees:

* **fluid == DES** — for every gate-scale sweep case the backend
  claims (:func:`repro.analysis.fluid.trunk_frames_per_call` returns an
  int), re-running the discrete-event simulator must produce the same
  integer.  This is the cross-check the ISSUE requires before a model
  may stand in for the machine.
* **overhaul parity** — the batched kernel / pooled frames / zero-copy
  segments changed *how* the simulator runs, not *what* it computes:
  with ``REPRO_FLUID=0`` (every case simulated) the gate documents of
  all committed areas — frame counts, datagram counts, repair traffic
  AND final-clock-derived latencies — are bit-identical to the
  baselines under ``benchmarks/results/``.
"""

import json

import pytest

from dataclasses import replace

from repro.analysis import fluid
from repro.bench.sweep import baseline_path, run_area
from repro.bench.sweep_areas import (DEEP_FABRICS, DEEP_FLAT_IMPL,
                                     FAB_SEG_OF, QUIET_AUTO,
                                     _deep_per_call, _deep_size,
                                     _fab_per_call_des)

GATE_SIZE = _deep_size("gate")


# ---------------------------------------------------------------- eligibility
def test_exact_model_follows_the_coverage_ledger():
    # dotted closed forms qualify...
    assert fluid.exact_model("bcast", "mcast-seg-nack")
    assert fluid.exact_model("reduce", "mcast-seg-combine")
    assert fluid.exact_model("gather", "mcast-seg-root-follow")
    # ...estimate markers and unknown pairs do not
    assert not fluid.exact_model("allgather", "mcast-seg-paced")
    assert not fluid.exact_model("bcast", "mcast-ack")
    assert not fluid.exact_model("bcast", "no-such-impl")


def test_hier_exception_drops_estimate_grade_ops():
    # the ledger maps all six ops to model_hier_frames, but its walk is
    # exact only for bcast/reduce/allreduce (see its docstring)
    assert fluid.exact_model("bcast", "hier-mcast")
    assert fluid.exact_model("reduce", "hier-mcast")
    assert fluid.exact_model("allreduce", "hier-mcast")
    assert not fluid.exact_model("gather", "hier-mcast")
    assert not fluid.exact_model("scatter", "hier-mcast")
    assert not fluid.exact_model("allgather", "hier-mcast")


def test_answers_declines_lossy_platforms_and_unwired_pairs():
    lossy = replace(QUIET_AUTO, loss=0.05)
    assert fluid.answers("bcast", "mcast-seg-nack", QUIET_AUTO)
    assert not fluid.answers("bcast", "mcast-seg-nack", lossy)
    # exact total-frame ledger entry, but no exact *trunk* model wired
    assert not fluid.answers("bcast", "p2p-binomial", QUIET_AUTO)
    seg_of, paths = DEEP_FABRICS["tree:2x2x2"][1:]
    assert fluid.trunk_frames_per_call(
        "bcast", "mcast-seg-nack", seg_of, 0, GATE_SIZE, lossy,
        paths) is None
    assert fluid.trunk_frames_per_call(
        "gather", "hier-mcast", seg_of, 0, GATE_SIZE, QUIET_AUTO,
        paths) is None


# ------------------------------------------------------------- fluid == DES
def _answered_deep_cases():
    for fabric in DEEP_FABRICS:
        for op in ("bcast", "scatter", "gather"):
            yield fabric, op, DEEP_FLAT_IMPL[op]
        yield fabric, "bcast", "hier-mcast"


@pytest.mark.parametrize("fabric,op,impl", list(_answered_deep_cases()))
def test_fluid_matches_des_on_every_answered_gate_case(fabric, op, impl):
    """The cross-check: the analytic answer for each deep-fabric gate
    case the backend claims equals the simulator's measurement."""
    n, seg_of, paths = DEEP_FABRICS[fabric]
    answer = fluid.trunk_frames_per_call(op, impl, seg_of, 0, GATE_SIZE,
                                         QUIET_AUTO, paths)
    assert answer is not None, f"backend must answer {op}/{impl}"
    assert answer == _deep_per_call(fabric, n, op, impl, GATE_SIZE,
                                    seed=1)


@pytest.mark.parametrize("impl", ["mcast-seg-nack", "hier-mcast"])
def test_fluid_matches_des_on_fabric_scaling_trunk(impl):
    answer = fluid.trunk_frames_per_call("bcast", impl, FAB_SEG_OF, 0,
                                         24_000, QUIET_AUTO)
    assert answer is not None
    assert answer == _fab_per_call_des(impl, 24_000, seed=1)


# -------------------------------------------------------- overhaul parity
@pytest.mark.parametrize("area", ["segmented-bcast", "fabric-scaling",
                                  "deep-fabric"])
def test_des_gate_documents_bit_identical_to_baselines(area, monkeypatch):
    """Full-DES parity: with the fluid backend disabled, the overhauled
    simulator reproduces every committed gate series exactly — frame
    and datagram counters (NetStats) and the latency metrics derived
    from final simulation clocks."""
    monkeypatch.setenv("REPRO_FLUID", "0")
    doc = run_area(area, scale="gate", workers=1, check=True)
    base = json.loads(baseline_path(area).read_text())
    assert doc["series"] == base["series"]


def test_fluid_gate_document_bit_identical_to_baseline(monkeypatch):
    """Fluid-on parity: analytic answers slot into the same document
    the DES produced when the baseline was committed."""
    monkeypatch.delenv("REPRO_FLUID", raising=False)
    doc = run_area("deep-fabric", scale="gate", workers=1, check=True)
    base = json.loads(baseline_path("deep-fabric").read_text())
    assert doc["series"] == base["series"]
