"""Unit tests for wire-format constants, frames and unit helpers."""

import pytest

from repro.simnet.frame import (BROADCAST, ETH_MIN_PAYLOAD, ETH_OVERHEAD,
                                Frame, is_multicast, mcast_mac, wire_bytes)
from repro.simnet.units import bytes_to_us, kb, rate_bytes_per_us, us_to_ms


def test_rate_bytes_per_us_fast_ethernet():
    assert rate_bytes_per_us(100) == 12.5


def test_bytes_to_us_round_trip():
    assert bytes_to_us(1250, 100) == 100.0
    assert bytes_to_us(0, 100) == 0.0


def test_bad_rate_rejected():
    with pytest.raises(ValueError):
        rate_bytes_per_us(0)
    with pytest.raises(ValueError):
        bytes_to_us(10, -5)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        bytes_to_us(-1, 100)


def test_kb_is_decimal():
    assert kb(5) == 5000
    assert kb(1.5) == 1500


def test_us_to_ms():
    assert us_to_ms(1500.0) == 1.5


def test_wire_bytes_pads_small_frames():
    # a 1-byte payload still occupies min-payload + overhead on the wire
    assert wire_bytes(1) == ETH_MIN_PAYLOAD + ETH_OVERHEAD
    assert wire_bytes(0) == ETH_MIN_PAYLOAD + ETH_OVERHEAD


def test_wire_bytes_large_frames_linear():
    assert wire_bytes(1500) == 1500 + ETH_OVERHEAD


def test_wire_bytes_rejects_negative():
    with pytest.raises(ValueError):
        wire_bytes(-1)


def test_multicast_space_disjoint_from_unicast_and_broadcast():
    grp = mcast_mac(7)
    assert is_multicast(grp)
    assert not is_multicast(5)          # host address
    assert not is_multicast(BROADCAST)  # broadcast is its own thing


def test_mcast_mac_rejects_negative_group():
    with pytest.raises(ValueError):
        mcast_mac(-1)


def test_frame_wire_time():
    f = Frame(src=0, dst=1, size=1462, payload=None)
    # 1462 + 38 overhead = 1500 wire bytes = 120 µs at 100 Mbps
    assert f.wire_time_us(100) == pytest.approx(120.0)


def test_frame_rejects_negative_size():
    with pytest.raises(ValueError):
        Frame(src=0, dst=1, size=-1, payload=None)


def test_frame_ids_unique():
    a = Frame(src=0, dst=1, size=10, payload=None)
    b = Frame(src=0, dst=1, size=10, payload=None)
    assert a.frame_id != b.frame_id
