"""Hierarchical multicast collectives (``hier-mcast``) on tiered
fabrics: correctness at every root, canonical reduction order, trunk
savings, repair locality, and graceful degradation to flat clusters."""

from dataclasses import replace

import numpy as np
import pytest

from repro import run_spmd
from repro.mpi.collective.hier import hier_state
from repro.mpi.ops import Op, SUM
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))

HIER_ALL = {"bcast": "hier-mcast", "reduce": "hier-mcast",
            "allreduce": "hier-mcast", "barrier": "hier-mcast"}


@pytest.mark.parametrize("root", [0, 2, 5])
def test_hier_bcast_delivers_everywhere(root):
    """Roots in either segment, leaders or not."""
    def main(env):
        data = bytes([root]) * 20_000 if env.rank == root else None
        data = yield from env.comm.bcast(data, root)
        return data == bytes([root]) * 20_000

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    assert result.returns == [True] * 8
    result.verify_safe_schedules()


def test_hier_bcast_small_and_opaque_payloads():
    def main(env):
        small = yield from env.comm.bcast(
            b"x" if env.rank == 0 else None, 0)
        obj = yield from env.comm.bcast(
            {"k": [1, 2, 3]} if env.rank == 7 else None, 7)
        return small, obj

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    assert result.returns == [(b"x", {"k": [1, 2, 3]})] * 8


@pytest.mark.parametrize("root", [0, 3, 6])
def test_hier_reduce_sums_at_any_root(root):
    def main(env):
        arr = np.full(3000, float(env.rank + 1))
        out = yield from env.comm.reduce(arr, SUM, root)
        if env.rank == root:
            return bool(np.all(out == 36.0))
        return out is None

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO,
                      collectives={"reduce": "hier-mcast"})
    assert result.returns == [True] * 8


def test_hier_reduce_canonical_order_contiguous_segments():
    """Contiguous rank blocks: hierarchical folding must equal MPI's
    absolute-rank order even for non-commutative ops, at any root."""
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        out = yield from env.comm.reduce(str(env.rank), concat, root=5)
        return out

    result = run_spmd(8, main, topology="tree:2x4", params=QUIET,
                      collectives={"reduce": "hier-mcast"})
    assert result.returns[5] == "01234567"
    assert all(r is None for i, r in enumerate(result.returns) if i != 5)


def test_hier_reduce_non_contiguous_falls_back_to_canonical():
    """A split that interleaves segments (even ranks with odd ranks
    swapped across leaves) must still produce canonical order for a
    non-commutative op — the impl falls back to the flat engine."""
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        # reorder ranks so segments are non-contiguous in the new comm:
        # new rank = 0,2,4,6,1,3,5,7 over hosts 0..7
        key = (env.rank % 4) * 2 + env.rank // 4
        sub = yield from env.comm.split(0, key=key)
        st = hier_state(sub)
        out = yield from sub.reduce(str(sub.rank), concat, root=0)
        return st.contiguous, out

    result = run_spmd(8, main, topology="tree:2x4", params=QUIET,
                      collectives={"reduce": "hier-mcast"})
    contigs = {c for c, _ in result.returns}
    assert contigs == {False}
    outs = [o for _, o in result.returns if o is not None]
    assert outs == ["01234567"]


def test_hier_allreduce_everyone_gets_the_sum():
    def main(env):
        arr = np.full(4000, float(env.rank + 1))
        out = yield from env.comm.allreduce(arr, SUM)
        return bool(np.all(out == 36.0))

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO,
                      collectives={"allreduce": "hier-mcast"})
    assert result.returns == [True] * 8


def test_hier_barrier_holds_the_fence():
    """No rank may leave the barrier before every rank has entered."""
    def main(env):
        yield env.sim.timeout(37.0 * env.rank)  # staggered entry
        entered = env.now
        yield from env.comm.barrier()
        return entered, env.now

    result = run_spmd(8, main, topology="tree:2x4", params=QUIET,
                      collectives={"barrier": "hier-mcast"})
    last_entry = max(entered for entered, _left in result.returns)
    for _entered, left in result.returns:
        assert left >= last_entry


def test_hier_on_flat_cluster_degrades_to_flat_engine():
    def main(env):
        env.comm.use_collectives(**HIER_ALL)
        data = yield from env.comm.bcast(
            bytes(12_000) if env.rank == 0 else None, 0)
        tot = yield from env.comm.allreduce(1, SUM)
        yield from env.comm.barrier()
        # no sub-channels were built: one segment
        return len(data), tot, env.comm._hier.seg_comm is None

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [(12_000, 4, True)] * 4
    assert result.stats["frames_trunk"] == 0


def test_hier_on_single_segment_subcomm_degrades():
    """A sub-communicator confined to one leaf has one segment: the
    hier entries must run the flat engine on it, correctly."""
    def main(env):
        sub = yield from env.comm.split(env.rank // 4, key=env.rank)
        sub.use_collectives(bcast="hier-mcast")
        data = yield from sub.bcast(
            bytes([sub.rank]) if sub.rank == 0 else None, 0)
        return data == b"\x00" and sub._hier.seg_comm is None

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    assert result.returns == [True] * 8


def _trunk_frames(impl, n_ops, size=24_000):
    def main(env):
        env.comm.use_collectives(bcast=impl)
        for _ in range(n_ops):
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
        return True

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    assert all(result.returns)
    return result.stats["frames_trunk"]


def test_hier_bcast_beats_flat_on_trunk_frames_per_call():
    """The headline claim: per call, the hierarchical broadcast
    serializes strictly fewer frames on the trunks than the flat
    segmented broadcast (the one-time IGMP setup is excluded by
    differencing a one-op and a two-op run)."""
    flat = _trunk_frames("mcast-seg-nack", 2) - _trunk_frames(
        "mcast-seg-nack", 1)
    hier = _trunk_frames("hier-mcast", 2) - _trunk_frames("hier-mcast", 1)
    assert hier < flat


def test_hier_repair_stays_inside_the_losing_segment():
    """Induced loss on a rank's *segment* channel is repaired by its
    segment leader — the repair traffic never crosses a trunk."""
    size = 24_000

    def main(env, lossy=True):
        env.comm.use_collectives(bcast="hier-mcast")
        # warmup builds the hier channels (and pays the IGMP setup)
        yield from env.comm.bcast(b"w" if env.rank == 0 else None, 0)
        if env.rank == 6 and lossy:
            seen = set()

            def drop_first(dgram):
                if dgram.kind != "mcast-seg":
                    return False
                key = dgram.payload[:2] + (dgram.payload[2][0].index
                                           if isinstance(dgram.payload[2],
                                                         tuple)
                                           else dgram.payload[2].index,)
                if key in seen:
                    return False
                seen.add(key)
                return True

            env.comm._hier.seg_comm.mcast.data_sock.drop_filter = \
                drop_first
        data = yield from env.comm.bcast(
            bytes(size) if env.rank == 0 else None, 0)
        return len(data)

    lossy = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    clean = run_spmd(8, lambda env: main(env, lossy=False),
                     topology="tree:2x4", params=AUTO)
    assert lossy.returns == clean.returns == [size] * 8
    assert lossy.stats["retransmissions"] > 0
    # every repair was segment-local: identical trunk data traffic
    assert (lossy.stats["trunk_frames_by_kind"]["mcast-seg"]
            == clean.stats["trunk_frames_by_kind"]["mcast-seg"])


def test_hier_free_releases_segment_groups():
    """Freeing a communicator leaves its hier groups on every switch."""
    def main(env):
        env.comm.use_collectives(bcast="hier-mcast")
        yield from env.comm.bcast(b"x" if env.rank == 0 else None, 0)
        st = env.comm._hier
        seg_group = st.seg_comm.mcast.group
        cluster = env.comm.world.cluster
        leaf = cluster.fabric.leaves[cluster.segment_of(env.host.addr)]
        before = len(leaf.members_of(seg_group))
        yield from env.comm.barrier()
        env.comm.free()
        yield env.sim.timeout(5000.0)   # let the IGMP leaves propagate
        after = len(leaf.members_of(seg_group))
        return before > 0, after == 0

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    assert result.returns == [(True, True)] * 8


def test_hier_mixes_with_other_collectives_and_dup():
    """hier-mcast interleaves with flat collectives and survives dup."""
    def main(env):
        env.comm.use_collectives(bcast="hier-mcast",
                                 allreduce="hier-mcast")
        a = yield from env.comm.bcast(
            b"a" * 5000 if env.rank == 0 else None, 0)
        tot = yield from env.comm.allreduce(1, SUM)
        gathered = yield from env.comm.gather(env.rank, 0)
        dup = yield from env.comm.dup()
        b = yield from dup.bcast(b"b" if env.rank == 3 else None, 3)
        dup.free()
        return (len(a), tot, gathered if env.rank == 0 else None, b)

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    for rank, (la, tot, g, b) in enumerate(result.returns):
        assert (la, tot, b) == (5000, 8, b"b")
        if rank == 0:
            assert g == list(range(8))


def test_early_hier_state_inspection_keeps_setup_barrier_collective():
    """A rank that peeks at the discovery state (hier_state) before the
    first hier-mcast collective must neither skip nor desynchronize the
    one-time setup barrier."""
    def main(env):
        if env.rank in (0, 5):
            st = hier_state(env.comm)       # early inspection
            assert not st.synced
        data = yield from env.comm.bcast(
            bytes(8000) if env.rank == 0 else None, 0)
        return len(data) == 8000 and env.comm._hier.synced

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    assert result.returns == [True] * 8
