"""Recursive hierarchical collectives (``hier-mcast``) on deep and
heterogeneous fabrics: the pure hierarchy layer (trees, phases,
canonical order), full-op correctness at many roots, leaders-of-leaders
recursion, and auto selection of the new scatter/gather/allgather
entries."""

from dataclasses import replace

import numpy as np
import pytest

from _invariants import assert_quiesced
from repro import run_spmd
from repro.mpi.collective.hier import (allgather_phases, bcast_phases,
                                       build_hier_tree, canonical_order,
                                       group_members, hier_state,
                                       scatter_phases,
                                       tree_internal_nodes, up_phases)
from repro.mpi.ops import Op, SUM
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))

#: 8 ranks, 4 leaves of 2, three switch tiers
DEEP = "tree:2x2x2"
DEEP_SEG = (0, 0, 1, 1, 2, 2, 3, 3)
DEEP_PATHS = ((0, 0), (0, 1), (1, 0), (1, 1))

HIER_ALL = {op: "hier-mcast" for op in
            ("bcast", "reduce", "allreduce", "barrier", "scatter",
             "gather", "allgather")}


# ------------------------------------------------ the pure hierarchy layer
def test_build_hier_tree_recursion_and_collapse():
    tree = build_hier_tree(DEEP_SEG, DEEP_PATHS)
    internals = tree_internal_nodes(tree)
    # core group + one group per mid switch: genuine leaders-of-leaders
    assert [n.path for n in internals] == [(), (0,), (1,)]
    assert group_members(internals[0]) == (0, 4)
    assert group_members(internals[1]) == (0, 2)
    assert group_members(internals[2]) == (4, 6)
    assert canonical_order(tree) == list(range(8))
    # two-tier default: exactly one leaders' group
    flat2 = build_hier_tree((0, 0, 0, 0, 1, 1, 1, 1))
    assert [n.path for n in tree_internal_nodes(flat2)] == [()]
    # a comm confined to one mid's subtree collapses the pass-through
    # tiers away: its top group bridges the two leaves directly
    sub = build_hier_tree((0, 0, 1, 1), ((0, 0), (0, 1)))
    internals = tree_internal_nodes(sub)
    assert [n.path for n in internals] == [(0,)]
    assert group_members(internals[0]) == (0, 2)


def test_phase_plans_cover_and_order_the_deep_tree():
    tree = build_hier_tree(DEEP_SEG, DEEP_PATHS)
    phases = bcast_phases(tree, root=5)
    # root 5's leaf first, then its chain bottom-up, then the rest
    assert phases[0].key == ("leaf", 2) and phases[0].root == 5
    assert phases[1].key == ("node", (1,)) and phases[1].root == 4
    assert phases[2].key == ("node", ()) and phases[2].root == 4
    # every rank receives: union of members over phases = all ranks
    covered = set()
    for ph in phases:
        covered.update(ph.members)
    assert covered == set(range(8))
    up, holder = up_phases(tree, root=5)
    assert holder == 4            # leader of root 5's top-level subtree
    plan = scatter_phases(tree, root=5)
    assert plan.hoist == (5, 4)   # root is not its subtree's leader
    ag = allgather_phases(tree)
    # the top group never re-broadcasts downwards (it learned in "up")
    assert all(ph.key != ("node", ()) for ph in ag.down)


def test_non_contiguous_on_deep_tree_detected():
    # interleaved ranks across the core: leader-ordered folding would
    # reorder operands
    seg = (0, 2, 1, 3, 0, 2, 1, 3)
    tree = build_hier_tree(seg, DEEP_PATHS)
    assert canonical_order(tree) != list(range(8))


# ------------------------------------------------ end-to-end correctness
@pytest.mark.parametrize("root", [0, 3, 5])
def test_deep_bcast_from_any_root(root):
    def main(env):
        data = bytes([root]) * 20_000 if env.rank == root else None
        data = yield from env.comm.bcast(data, root)
        return data == bytes([root]) * 20_000

    result = run_spmd(8, main, topology=DEEP, params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    assert result.returns == [True] * 8
    result.verify_safe_schedules()
    # hier channels allocate per-tier groups and slabs: prove every
    # ledger (sockets, memberships, snooped switches) drains to nothing
    assert_quiesced(result.cluster, result.world)


@pytest.mark.parametrize("root", [0, 6])
def test_deep_reduce_canonical_order_non_commutative(root):
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        out = yield from env.comm.reduce(str(env.rank), concat, root)
        return out

    result = run_spmd(8, main, topology=DEEP, params=QUIET,
                      collectives={"reduce": "hier-mcast"})
    assert result.returns[root] == "01234567"
    assert all(r is None for i, r in enumerate(result.returns)
               if i != root)


@pytest.mark.parametrize("topology,n", [(DEEP, 8), ("tree:[4,8,2]", 14)])
def test_deep_scatter_gather_allgather_roundtrip(topology, n):
    def main(env):
        size = env.comm.size
        objs = None
        if env.rank == 1:
            objs = [bytes([r]) * 3000 for r in range(size)]
        mine = yield from env.comm.scatter(objs, 1)
        ok = mine == bytes([env.rank]) * 3000
        got = yield from env.comm.gather(mine, 2)
        if env.rank == 2:
            ok = ok and got == [bytes([r]) * 3000 for r in range(size)]
        every = yield from env.comm.allgather(env.rank * 11)
        ok = ok and every == [r * 11 for r in range(size)]
        return ok

    result = run_spmd(n, main, topology=topology, params=AUTO,
                      collectives=HIER_ALL)
    assert result.returns == [True] * n
    result.verify_safe_schedules()


def test_deep_allreduce_and_barrier():
    def main(env):
        yield env.sim.timeout(29.0 * env.rank)   # staggered entry
        entered = env.now
        yield from env.comm.barrier()
        released = env.now
        out = yield from env.comm.allreduce(
            np.full(3000, float(env.rank + 1)), SUM)
        return entered, released, bool(np.all(out == 36.0))

    result = run_spmd(8, main, topology=DEEP, params=AUTO,
                      collectives=HIER_ALL)
    last_entry = max(e for e, _r, _ok in result.returns)
    for _e, released, ok in result.returns:
        assert released >= last_entry
        assert ok
    assert_quiesced(result.cluster, result.world)


def test_deep_hier_state_builds_recursive_channels():
    def main(env):
        yield from env.comm.bcast(b"w" if env.rank == 0 else None, 0)
        st = env.comm._hier
        return (sorted(st.comms), st.contiguous)

    result = run_spmd(8, main, topology=DEEP, params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    keys0, contiguous = result.returns[0]
    assert contiguous
    # rank 0 is leader of everything on its chain: leaf 0, mid (0,),
    # and the core group
    assert keys0 == [("leaf", 0), ("node", ()), ("node", (0,))]
    keys1, _ = result.returns[1]
    assert keys1 == [("leaf", 0)]          # plain member: leaf only
    keys6, _ = result.returns[6]
    assert keys6 == [("leaf", 3), ("node", (1,))]


def test_deep_repair_stays_inside_the_losing_leaf():
    """Induced loss on a leaf channel of a 3-tier fabric is repaired by
    the leaf's leader — repair data never touches any trunk tier."""
    size = 24_000

    def main(env, lossy=True):
        env.comm.use_collectives(bcast="hier-mcast")
        yield from env.comm.bcast(b"w" if env.rank == 0 else None, 0)
        if env.rank == 7 and lossy:
            seen = set()

            def drop_first(dgram):
                if dgram.kind != "mcast-seg":
                    return False
                key = dgram.payload[:2]
                if key in seen:
                    return False
                seen.add(key)
                return True

            env.comm._hier.seg_comm.mcast.data_sock.drop_filter = \
                drop_first
        data = yield from env.comm.bcast(
            bytes(size) if env.rank == 0 else None, 0)
        return len(data)

    lossy = run_spmd(8, main, topology=DEEP, params=AUTO)
    clean = run_spmd(8, lambda env: main(env, lossy=False),
                     topology=DEEP, params=AUTO)
    assert lossy.returns == clean.returns == [size] * 8
    assert lossy.stats["retransmissions"] > 0
    assert (lossy.stats["trunk_frames_by_kind"]["mcast-seg"]
            == clean.stats["trunk_frames_by_kind"]["mcast-seg"])


def test_auto_picks_hier_for_new_ops_on_deep_tree():
    """End to end: a large gather and scatter on the deep tree resolve
    to hier-mcast on every rank (the model favors the hierarchy's
    trunk confinement there), and an allgather on a wide heterogeneous
    tree does too."""
    from repro.mpi.collective.policy import auto_impl, TopoInfo

    topo = TopoInfo(seg_of_rank=DEEP_SEG, contiguous=True,
                    paths=DEEP_PATHS)
    assert auto_impl("gather", 48_000, 8, AUTO, topo=topo) == \
        "hier-mcast"
    assert auto_impl("scatter", 200_000, 8, AUTO, topo=topo) == \
        "hier-mcast"

    def main(env):
        env.comm.use_collectives(gather="auto", scatter="auto")
        n = env.comm.size
        yield from env.comm.gather(bytes(48_000), 0)
        objs = [bytes(200_000 // n)] * n if env.rank == 0 else None
        yield from env.comm.scatter(objs, 0)
        return [name for _op, name in env.comm.impl_log]

    result = run_spmd(8, main, topology=DEEP, params=AUTO)
    logs = set(tuple(log) for log in result.returns)
    assert logs == {("hier-mcast", "hier-mcast")}
    result.verify_safe_schedules()

    wide = TopoInfo(seg_of_rank=(0,) * 4 + (1,) * 8 + (2,) * 2,
                    contiguous=True, paths=((0,), (1,), (2,)))
    assert auto_impl("allgather", 8_000, 14, AUTO, topo=wide) == \
        "hier-mcast"

    def ag_main(env):
        env.comm.use_collectives(allgather="auto")
        out = yield from env.comm.allgather(bytes(8_000))
        assert len(out) == env.comm.size
        return env.comm.impl_log[-1][1]

    ag = run_spmd(14, ag_main, topology="tree:[4,8,2]", params=AUTO)
    assert set(ag.returns) == {"hier-mcast"}


def test_hier_survives_dup_split_on_deep_tree():
    def main(env):
        env.comm.use_collectives(**HIER_ALL)
        dup = yield from env.comm.dup()
        a = yield from dup.bcast(b"a" * 5000 if env.rank == 0 else None,
                                 0)
        half = yield from dup.split(env.rank % 2, key=env.rank)
        tot = yield from half.allreduce(1, SUM)
        half.free()
        dup.free()
        return len(a), tot

    result = run_spmd(8, main, topology=DEEP, params=AUTO)
    assert result.returns == [(5000, 4)] * 8


def test_single_member_leaf_gets_its_scatter_element():
    """tree:[2,1,2]: the middle segment is one lone rank whose element
    arrives as a one-entry bundle from its leader group."""
    def main(env):
        objs = ([bytes([r]) * 2000 for r in range(5)]
                if env.rank == 0 else None)
        mine = yield from env.comm.scatter(objs, 0)
        g = yield from env.comm.gather(mine, 4)
        if env.rank == 4:
            return g == [bytes([r]) * 2000 for r in range(5)]
        return mine == bytes([env.rank]) * 2000

    result = run_spmd(5, main, topology="tree:[2,1,2]", params=AUTO,
                      collectives=HIER_ALL)
    assert result.returns == [True] * 5


def test_early_hier_state_inspection_on_deep_tree():
    def main(env):
        if env.rank in (0, 7):
            st = hier_state(env.comm)       # early inspection
            assert not st.synced
        data = yield from env.comm.bcast(
            bytes(8000) if env.rank == 0 else None, 0)
        return len(data) == 8000 and env.comm._hier.synced

    result = run_spmd(8, main, topology=DEEP, params=AUTO,
                      collectives={"bcast": "hier-mcast"})
    assert result.returns == [True] * 8


def test_hier_slab_recycled_after_free():
    """Churning hier communicators must not march the group/port slab
    space forward forever: once every member frees a communicator, its
    slab is reused by the next one (regression for long-lived jobs)."""
    def main(env):
        marches = []
        for _ in range(4):
            dup = yield from env.comm.dup()
            dup.use_collectives(allreduce="hier-mcast")
            tot = yield from dup.allreduce(1, SUM)
            assert tot == env.comm.size
            yield from env.comm.barrier()   # nobody frees early
            dup.free()
            yield env.sim.timeout(3000.0)   # leaves propagate
            marches.append(env.comm.world._hier_next)
        return marches

    result = run_spmd(8, main, topology=DEEP, params=AUTO)
    for marches in result.returns:
        # the allocator advanced once (the first dup) and then reused
        # the freed slab for every later churn iteration
        assert len(set(marches)) == 1, marches
