"""IP fragmentation math and the host-CPU resource."""

import pytest

from repro.simnet.calibration import FAST_ETHERNET_HUB, NetParams, quiet
from repro.simnet.ip import Datagram, GroupAllocator, fragment_sizes
from repro.simnet.kernel import Simulator
from repro.simnet.resource import Resource
from repro.simnet.kernel import SimError

PARAMS = quiet(FAST_ETHERNET_HUB)


# ---------------------------------------------------------------- fragmentation
def test_frames_for_matches_paper_formula():
    """paper: floor(M/T)+1 frames for M bytes (T = usable frame payload)."""
    p = PARAMS
    assert p.frames_for(0) == 1
    assert p.frames_for(1) == 1
    assert p.frames_for(p.max_udp_payload) == 1
    assert p.frames_for(p.max_udp_payload + 1) == 2
    assert p.frames_for(5000) == 4


def test_fragment_sizes_cover_payload_exactly():
    p = PARAMS
    for m in (0, 1, 100, 1472, 1473, 3000, 5000, 20000):
        sizes = fragment_sizes(p, m)
        user = sum(sizes) - p.ip_header * len(sizes) - p.udp_header
        assert user == m
        assert len(sizes) == p.frames_for(m)
        assert all(s <= p.mtu for s in sizes)


def test_fragment_sizes_first_carries_udp_header():
    p = PARAMS
    sizes = fragment_sizes(p, 2000)
    assert sizes[0] == p.mtu                       # full first fragment
    assert sizes[1] == (2000 - p.max_udp_payload) + p.ip_header


def test_datagram_rejects_negative_size():
    with pytest.raises(ValueError):
        Datagram(src=0, src_port=1, dst=1, dst_port=2, payload=None,
                 size=-1)


def test_group_allocator_unique():
    alloc = GroupAllocator()
    groups = {alloc.allocate() for _ in range(100)}
    assert len(groups) == 100


def test_frames_for_rejects_negative():
    with pytest.raises(ValueError):
        PARAMS.frames_for(-1)


def test_netparams_quiet_removes_jitter():
    q = quiet(NetParams(jitter_sigma=0.5))
    assert q.jitter_sigma == 0.0


# ---------------------------------------------------------------- resource
def test_resource_serializes_holders():
    sim = Simulator()
    cpu = Resource(sim)
    spans = []

    def worker(tag):
        start_wait = sim.now
        yield from cpu.use(10.0)
        spans.append((tag, start_wait, sim.now))

    for tag in range(3):
        sim.process(worker(tag))
    sim.run()
    ends = [end for _tag, _s, end in spans]
    assert ends == [10.0, 20.0, 30.0]      # strict FIFO serialization
    assert [t for t, _, _ in spans] == [0, 1, 2]


def test_resource_release_without_hold_is_error():
    sim = Simulator()
    cpu = Resource(sim)
    with pytest.raises(SimError):
        cpu.release()


def test_resource_released_on_exception():
    """An exception thrown into a holder mid-``use`` must not leak the
    resource (the ``finally`` in :meth:`Resource.use` releases)."""
    from repro.simnet.kernel import Interrupt

    sim = Simulator()
    cpu = Resource(sim)

    def victim():
        try:
            yield from cpu.use(100.0)
        except Interrupt:
            pass

    def good():
        yield sim.timeout(6.0)
        yield from cpu.use(2.0)
        return sim.now

    vproc = sim.process(victim())
    sim.schedule_call(5.0, vproc.interrupt, "evict")
    proc = sim.process(good())
    sim.run()
    assert proc.ok and proc.value == pytest.approx(8.0)
    assert not cpu.held


def test_resource_queue_depth():
    sim = Simulator()
    cpu = Resource(sim)
    cpu.acquire()
    cpu.acquire()
    cpu.acquire()
    assert cpu.queue_depth == 2
    assert cpu.held
