"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.kernel import (AllOf, AnyOf, DeadlockError,
                                 Interrupt, SimError, Simulator)


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(5.0)
        seen.append(sim.now)
        yield sim.timeout(2.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [5.0, 7.5]


def test_event_value_passes_to_yield():
    sim = Simulator()
    got = []

    def waiter(ev):
        value = yield ev
        got.append(value)

    ev = sim.event()
    sim.process(waiter(ev))
    sim.schedule_call(3.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]
    assert sim.now == 3.0


def test_event_fail_raises_in_process():
    sim = Simulator()
    caught = []

    def waiter(ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    ev = sim.event()
    sim.process(waiter(ev))
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimError):
        _ = ev.value


def test_process_return_value_is_event_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        proc = sim.process(child())
        result = yield proc
        return result * 2

    top = sim.process(parent())
    sim.run()
    assert top.value == 84


def test_process_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["child failed"]


def test_unjoined_crash_propagates_to_run():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimError, match="must yield Event"):
        sim.run()


def test_deadlock_detection_names_processes():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never fires

    sim.process(stuck(), name="stucky")
    with pytest.raises(DeadlockError, match="stucky"):
        sim.run()


def test_daemon_processes_do_not_deadlock():
    sim = Simulator()

    def daemon():
        yield sim.event()  # never fires; fine for a daemon

    def worker():
        yield sim.timeout(1.0)

    sim.process(daemon(), name="d", daemon=True)
    sim.process(worker())
    assert sim.run() == 1.0


def test_run_until_stops_the_clock():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10.0)

    sim.process(ticker(), daemon=True)
    assert sim.run(until=35.0) == 35.0


def test_any_of_fires_on_first():
    sim = Simulator()
    order = []

    def proc():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        fired = yield sim.any_of([fast, slow])
        order.append((sim.now, list(fired.values())))

    sim.process(proc())
    sim.run()
    assert order == [(1.0, ["fast"])]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def proc():
        evs = [sim.timeout(t) for t in (3.0, 1.0, 2.0)]
        yield sim.all_of(evs)
        done_at.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done_at == [3.0]


def test_condition_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])
    with pytest.raises(ValueError):
        AllOf(sim, [])


def test_tie_break_is_insertion_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen.append((sim.now, intr.cause))

    proc = sim.process(sleeper())
    sim.schedule_call(2.0, proc.interrupt, "wakeup")
    sim.run()
    assert seen == [(2.0, "wakeup")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimError):
        proc.interrupt()


def test_schedule_call_runs_function():
    sim = Simulator()
    calls = []
    sim.schedule_call(4.0, calls.append, "x")
    sim.run()
    assert calls == ["x"] and sim.now == 4.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_determinism_same_seedless_structure():
    """Two identical simulations produce identical event orders."""

    def build():
        sim = Simulator()
        trace = []

        def proc(tag, period):
            for _ in range(5):
                yield sim.timeout(period)
                trace.append((sim.now, tag))

        sim.process(proc("a", 3.0))
        sim.process(proc("b", 2.0))
        sim.run()
        return trace

    assert build() == build()
