"""Large payloads: rendezvous in collectives, multi-fragment multicast."""

import numpy as np

from repro.mpi import SUM
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_bcast_p2p_rendezvous_path():
    """A 64 kB broadcast rides RTS/CTS on every tree edge."""

    def main(env):
        data = (np.arange(8192, dtype=np.float64) if env.rank == 0
                else None)
        data = yield from env.comm.bcast(data, root=0)
        return float(data.sum())

    result = run_spmd(5, main, params=QUIET)
    expected = float(np.arange(8192).sum())
    assert result.returns == [expected] * 5
    kinds = result.stats["frames_by_kind"]
    assert kinds.get("p2p-rts", 0) == 4       # one per tree edge
    assert kinds.get("p2p-cts", 0) == 4


def test_mcast_bcast_many_fragments():
    """100 kB through one multicast: ~69 fragments, all reassembled."""
    size = 100_000

    def main(env):
        data = bytes(size) if env.rank == 0 else None
        data = yield from env.comm.bcast(data, root=0)
        return len(data)

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": "mcast-binary"})
    assert result.returns == [size] * 4
    kinds = result.stats["frames_by_kind"]
    assert kinds.get("mcast-data", 0) == QUIET.frames_for(size + 8)
    assert result.stats["drops_not_posted"] == 0


def test_forced_rendezvous_small_threshold():
    """Dropping the eager threshold reroutes even 1 kB messages through
    the handshake without changing results."""

    def main(env):
        out = yield from env.comm.allreduce(
            np.full(128, env.rank, dtype=np.int64), SUM)
        return int(out[0])

    result = run_spmd(4, main, params=QUIET, eager_threshold=512)
    assert result.returns == [6] * 4
    assert result.stats["frames_by_kind"].get("p2p-rts", 0) > 0


def test_gather_large_subtree_payloads():
    def main(env):
        arr = np.full(2048, env.rank, dtype=np.float64)   # 16 kB each
        parts = yield from env.comm.gather(arr, root=0)
        if env.rank == 0:
            return [int(p[0]) for p in parts]

    result = run_spmd(6, main, params=QUIET)
    assert result.returns[0] == list(range(6))


def test_reduce_large_arrays_elementwise():
    def main(env):
        arr = np.full(4096, float(env.rank), dtype=np.float64)  # 32 kB
        out = yield from env.comm.reduce(arr, SUM, root=0)
        if env.rank == 0:
            return float(out[0])

    n = 5
    result = run_spmd(n, main, params=QUIET)
    assert result.returns[0] == float(sum(range(n)))


def test_alltoall_mixed_sizes():
    def main(env):
        objs = [bytes((env.rank + dst) * 700) for dst in range(env.size)]
        got = yield from env.comm.alltoall(objs)
        return [len(g) for g in got]

    n = 4
    result = run_spmd(n, main, params=QUIET)
    for r in range(n):
        assert result.returns[r] == [(src + r) * 700 for src in range(n)]
