"""Full-duplex link and store-and-forward switch tests."""

import pytest

from repro.simnet.calibration import FAST_ETHERNET_SWITCH, quiet
from repro.simnet.frame import BROADCAST, Frame, mcast_mac
from repro.simnet.kernel import Simulator
from repro.simnet.link import HalfLink
from repro.simnet.stats import NetStats
from repro.simnet.switchdev import Switch

PARAMS = quiet(FAST_ETHERNET_SWITCH)


def test_halflink_fifo_and_serialization():
    sim = Simulator()
    stats = NetStats()
    arrived = []
    link = HalfLink(sim, PARAMS, stats,
                    deliver=lambda f: arrived.append((sim.now, f.payload)))
    link.send(Frame(src=0, dst=1, size=962, payload="a"))   # 1000 B wire
    link.send(Frame(src=0, dst=1, size=962, payload="b"))
    sim.run()
    # Arrival = serialization + propagation; second frame queues behind.
    assert arrived[0] == (pytest.approx(80.0 + 0.5), "a")
    assert arrived[1] == (pytest.approx(160.0 + 0.5), "b")
    assert stats.frames_sent == 2


def test_halflink_send_event_fires_at_serialization_end():
    sim = Simulator()
    link = HalfLink(sim, PARAMS, NetStats(), deliver=lambda f: None)
    done = link.send(Frame(src=0, dst=1, size=962, payload=None))
    times = []

    def watch():
        yield done
        times.append(sim.now)

    sim.process(watch())
    sim.run()
    assert times == [pytest.approx(80.0)]


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def deliver(self, frame):
        self.got.append((self.sim.now, frame))
        return True


def make_switched_pair(n=3):
    """n sinks behind a switch; returns (sim, switch, uplinks, sinks)."""
    sim = Simulator()
    stats = NetStats()
    switch = Switch(sim, PARAMS, stats=stats)
    sinks, uplinks = [], []
    for i in range(n):
        sink = _Sink(sim)
        down = HalfLink(sim, PARAMS, stats, deliver=sink.deliver)
        port = switch.add_port(down)
        holder = [port]
        up = HalfLink(sim, PARAMS, stats,
                      deliver=lambda f, p=port: switch.receive(p, f))
        sinks.append(sink)
        uplinks.append(up)
    return sim, switch, uplinks, sinks, stats


def test_unknown_unicast_skips_ingress_port():
    sim, switch, up, sinks, _ = make_switched_pair(3)
    up[0].send(Frame(src=10, dst=99, size=100, payload="flood"))
    sim.run()
    assert len(sinks[0].got) == 0
    assert len(sinks[1].got) == 1
    assert len(sinks[2].got) == 1
    assert switch.frames_flooded == 1


def test_learning_switch_unicasts_to_one_port():
    sim, switch, up, sinks, _ = make_switched_pair(3)
    up[1].send(Frame(src=20, dst=98, size=50, payload="learn-me"))
    sim.run()
    assert switch.port_of(20) == 1
    # Now a frame *to* 20 goes only out port 1.
    up[0].send(Frame(src=10, dst=20, size=50, payload="direct"))
    sim.run()
    assert [f.payload for _, f in sinks[1].got][-1] == "direct"
    assert all(f.payload != "direct" for _, f in sinks[2].got)


def test_store_and_forward_latency():
    """End-to-end = 2 serializations + 2 propagations + switch latency."""
    sim, switch, up, sinks, _ = make_switched_pair(2)
    up[0].send(Frame(src=10, dst=99, size=962, payload="t"))  # 1000 B wire
    sim.run()
    t_arrival = sinks[1].got[0][0]
    expected = 80.0 + 0.5 + PARAMS.switch_latency_us + 80.0 + 0.5
    assert t_arrival == pytest.approx(expected)


def test_broadcast_goes_everywhere_but_ingress():
    sim, switch, up, sinks, _ = make_switched_pair(4)
    up[2].send(Frame(src=30, dst=BROADCAST, size=50, payload="bc"))
    sim.run()
    assert len(sinks[2].got) == 0
    for i in (0, 1, 3):
        assert [f.payload for _, f in sinks[i].got] == ["bc"]


def test_igmp_snooping_limits_multicast():
    sim, switch, up, sinks, _ = make_switched_pair(4)
    grp = mcast_mac(5)
    # Ports 1 and 3 join.
    up[1].send(Frame(src=21, dst=grp, size=28, payload=("join", grp),
                     kind="igmp"))
    up[3].send(Frame(src=23, dst=grp, size=28, payload=("join", grp),
                     kind="igmp"))
    sim.run()
    assert switch.members_of(grp) == {1, 3}
    up[0].send(Frame(src=20, dst=grp, size=500, payload="mc"))
    sim.run()
    assert len(sinks[1].got) == 1 and len(sinks[3].got) == 1
    assert len(sinks[0].got) == 0 and len(sinks[2].got) == 0


def test_igmp_leave_removes_port():
    sim, switch, up, sinks, _ = make_switched_pair(3)
    grp = mcast_mac(6)
    up[1].send(Frame(src=21, dst=grp, size=28, payload=("join", grp),
                     kind="igmp"))
    sim.run()
    up[1].send(Frame(src=21, dst=grp, size=28, payload=("leave", grp),
                     kind="igmp"))
    sim.run()
    assert switch.members_of(grp) == set()
    # Registered-but-empty group: traffic is dropped, not flooded.
    up[0].send(Frame(src=20, dst=grp, size=100, payload="mc"))
    sim.run()
    assert all(len(s.got) == 0 for s in sinks)


def test_unregistered_multicast_floods():
    sim, switch, up, sinks, _ = make_switched_pair(3)
    grp = mcast_mac(7)
    up[0].send(Frame(src=20, dst=grp, size=100, payload="mc"))
    sim.run()
    assert len(sinks[1].got) == 1 and len(sinks[2].got) == 1
    assert switch.frames_flooded == 1


def test_multicast_not_sent_back_to_member_ingress():
    sim, switch, up, sinks, _ = make_switched_pair(3)
    grp = mcast_mac(8)
    for p in (0, 1, 2):
        up[p].send(Frame(src=20 + p, dst=grp, size=28,
                         payload=("join", grp), kind="igmp"))
    sim.run()
    up[0].send(Frame(src=20, dst=grp, size=100, payload="mc"))
    sim.run()
    assert len(sinks[0].got) == 0
    assert len(sinks[1].got) == 1 and len(sinks[2].got) == 1


def test_switch_output_queue_serializes_per_port():
    """Two frames racing to the same output port queue up; different
    output ports forward in parallel."""
    sim, switch, up, sinks, _ = make_switched_pair(3)
    # Teach the switch where 31 and 32 are (ports 1, 2).
    up[1].send(Frame(src=31, dst=99, size=46, payload=None))
    up[2].send(Frame(src=32, dst=99, size=46, payload=None))
    sim.run()
    t0 = sim.now
    # Port 0 sends one frame to 31 and one to 32: they fan out in parallel.
    up[0].send(Frame(src=30, dst=31, size=962, payload="to31"))
    up[0].send(Frame(src=30, dst=32, size=962, payload="to32"))
    sim.run()
    arr31 = [t for t, f in sinks[1].got if f.payload == "to31"][0]
    arr32 = [t for t, f in sinks[2].got if f.payload == "to32"][0]
    # to32 serializes on the uplink after to31 (80 µs later) but doesn't
    # additionally queue at the switch: gap stays ~one serialization.
    assert arr32 - arr31 == pytest.approx(80.0, abs=1.0)
    assert arr31 - t0 == pytest.approx(80.0 + 0.5 + 12.0 + 80.0 + 0.5,
                                       abs=1.0)
