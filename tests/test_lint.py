"""repro.lint: every rule code fires on a trigger fixture and stays
quiet on the matching clean fixture — plus the repo itself must lint
clean (the same gate ``make lint-deep`` / CI enforce)."""

import textwrap
from pathlib import Path

from repro.lint.engine import lint_paths, module_name, run_cli
from repro.lint.registry_check import check_tables

REPO = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel, text in files.items():
        f = tmp_path / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(textwrap.dedent(text))
    violations, _ = lint_paths([str(tmp_path)])
    return violations


def codes(violations):
    return {v.code for v in violations}


# ------------------------------------------------------------- harness
def test_module_name_resolution():
    assert module_name(Path("src/repro/core/segment.py")) == \
        "repro.core.segment"
    assert module_name(Path("x/repro/mpi/__init__.py")) == "repro.mpi"
    assert module_name(Path("tests/test_lint.py")) is None


def test_parse_error_is_reported_not_fatal(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/bad.py": "def broken(:\n"})
    assert codes(v) == {"PARSE"}


def test_explain_known_and_unknown_codes(capsys):
    assert run_cli(["--explain", "LEAK01"]) == 0
    assert "post_recv" in capsys.readouterr().out
    assert run_cli(["--explain", "NOPE99"]) == 2


# -------------------------------------------------------------- LEAK01
def test_leak01_triggers_on_dropped_post_recv(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def collect(sock):
            ev = sock.post_recv()
            return 1
    """})
    assert "LEAK01" in codes(v)


def test_leak01_clean_with_try_finally_release(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def collect(sock):
            try:
                ev = sock.post_recv()
                use(ev)
            finally:
                sock.cancel_recv_all()
    """})
    assert "LEAK01" not in codes(v)


def test_leak01_clean_when_result_is_transferred(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def post(sock):
            return sock.post_recv()
    """})
    assert "LEAK01" not in codes(v)


def test_leak01_clean_with_paired_method_in_class(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        class Chan:
            def open(self):
                self.sock.join_group(self.group)
            def close(self):
                self.sock.leave_group(self.group)
    """})
    assert "LEAK01" not in codes(v)


def test_leak01_triggers_on_dropped_fault_injection(tmp_path):
    # a partitioned trunk is an acquired resource: its heal callable
    # dropped on the floor means teardown's IGMP leaves cannot cross
    v = lint_tree(tmp_path, {"repro/chaos/x.py": """\
        def cut(fabric, path):
            fabric.partition_trunk(path)
            return 1
    """})
    assert "LEAK01" in codes(v)


def test_leak01_clean_when_fault_heal_is_kept_or_released(tmp_path):
    v = lint_tree(tmp_path, {"repro/chaos/x.py": """\
        def cut_and_heal(cluster, fabric, path, addr):
            undo = fabric.partition_trunk(path)
            try:
                run(cluster)
            finally:
                undo()
                fabric.heal_trunk(path)

        def cut_for_caller(switch):
            return switch.power_off()

        def crash(cluster, addr, undos):
            undos.append(cluster.crash_host(addr))
    """})
    assert "LEAK01" not in codes(v)


# --------------------------------------------------------------- OBS01
def test_obs01_triggers_on_unpaired_span_begin(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def dispatch(rec, now, addr):
            token = rec.collective_begin(now, addr, 0, "bcast", "mcast")
            return run(token)
    """})
    assert "OBS01" in codes(v)


def test_obs01_clean_with_try_finally_end(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def dispatch(rec, now, addr):
            token = rec.phase_begin(now, addr, "up0")
            try:
                return run(token)
            finally:
                rec.phase_end(now, token)
    """})
    assert "OBS01" not in codes(v)


def test_obs01_clean_with_context_manager_form(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def dispatch(rec, now, addr):
            with rec.span_begin(now, addr):
                return run()
    """})
    assert "OBS01" not in codes(v)


def test_obs01_clean_with_paired_method_in_class(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        class Meter:
            def start(self, rec, now):
                self.tok = rec.round_begin(now, 1, "serve", 0, 0, 4)
            def stop(self, rec, now):
                rec.round_end(now, self.tok)
    """})
    assert "OBS01" not in codes(v)


def test_obs01_triggers_on_unpaired_chaos_fault_begin(tmp_path):
    v = lint_tree(tmp_path, {"repro/chaos/x.py": """\
        def arm(rec, now):
            token = rec.chaos_fault_begin(now, "cut")
            return token
    """})
    assert "OBS01" in codes(v)


def test_obs01_clean_with_chaos_end_in_nested_closure(tmp_path):
    # the timed_fault idiom: begin fires inside the arm closure, end
    # inside the heal closure — both within one enclosing function
    v = lint_tree(tmp_path, {"repro/chaos/x.py": """\
        def timed(cluster, name, t0):
            state = {}

            def arm():
                rec = cluster.stats.recorder
                state["tok"] = rec.chaos_fault_begin(cluster.sim.now, name)

            def heal():
                rec = cluster.stats.recorder
                rec.chaos_fault_end(cluster.sim.now, state["tok"])

            cluster.sim.schedule_call(t0, arm)
            return heal
    """})
    assert "OBS01" not in codes(v)


def test_obs01_mismatched_end_name_still_triggers(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        def dispatch(rec, now, addr):
            token = rec.phase_begin(now, addr, "up0")
            try:
                return run(token)
            finally:
                rec.round_end(now, token)
    """})
    assert "OBS01" in codes(v)


# --------------------------------------------------------------- DET01
def test_det01_triggers_on_wall_clock_and_set_iteration(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        import time

        def stamp():
            return time.time()

        def fanout(members):
            members = set(members)
            for m in members:
                ping(m)
    """})
    det = [x for x in v if x.code == "DET01"]
    assert len(det) >= 2


def test_det01_clean_with_sorted_iteration_and_no_wall_clock(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        def fanout(members):
            members = set(members)
            for m in sorted(members):
                ping(m)
            return sum(x for x in members)
    """})
    assert "DET01" not in codes(v)


def test_det01_triggers_on_registry_dict_iteration(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        class Switch:
            def flood(self, group, ingress):
                refs = self._mcast_table.setdefault(group, {})
                for port in refs:
                    self.push(port)
                for mac, port in self._mac_table.items():
                    self.learn(mac, port)
    """})
    det = [x for x in v if x.code == "DET01"]
    assert len(det) == 2
    assert all("registry" in x.message for x in det)


def test_det01_clean_registry_iteration_when_sorted_or_setcomp(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        class Switch:
            def members_of(self, group):
                refs = self._mcast_table.get(group, {})
                return {i for i, n in refs.items() if n > 0}

            def flood(self, group, ingress):
                members = self._mcast_table.get(group)
                return [i for i in sorted(members)
                        if members[i] > 0 and i != ingress]

            def census(self):
                return sum(n for n in self._mcast_refs.values())
    """})
    assert "DET01" not in codes(v)


def test_det01_ignores_modules_outside_sim_layers(tmp_path):
    v = lint_tree(tmp_path, {"repro/bench/x.py": """\
        import time

        def stamp():
            return time.time()
    """})
    assert "DET01" not in codes(v)


# --------------------------------------------------------------- LAY01
def test_lay01_triggers_on_substrate_importing_mpi(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        from repro.mpi.world import MpiWorld
    """})
    assert "LAY01" in codes(v)


def test_lay01_triggers_on_core_importing_p2p_algorithms(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": """\
        from repro.mpi.collective.bcast_p2p import binomial_children
    """})
    assert "LAY01" in codes(v)


def test_lay01_allowlist_and_deferred_imports_are_clean(tmp_path):
    v = lint_tree(tmp_path, {
        "repro/core/x.py": """\
            from repro.mpi.collective.registry import register
            from repro.mpi.datatypes import type_size
        """,
        "repro/mpi/pol.py": """\
            def pick():
                from repro.analysis import framecount
                return framecount
        """})
    assert "LAY01" not in codes(v)


def test_lay01_resolves_relative_imports(tmp_path):
    v = lint_tree(tmp_path, {"repro/simnet/x.py": """\
        from ..mpi import world
    """})
    assert "LAY01" in codes(v)


# --------------------------------------------------------------- TAG01
def test_tag01_triggers_on_duplicate_tag_values(tmp_path):
    v = lint_tree(tmp_path, {"repro/mpi/collective/tags.py": """\
        TAG_A = 1
        TAG_B = 1
    """})
    assert "TAG01" in codes(v)


def test_tag01_triggers_on_round_namespace_key_collision(tmp_path):
    v = lint_tree(tmp_path, {
        "repro/core/a.py": 'ns = round_namespace("sc")\n',
        "repro/core/b.py": 'ns = round_namespace("sc")\n'})
    assert "TAG01" in codes(v)


def test_tag01_clean_with_distinct_tags_and_keys(tmp_path):
    v = lint_tree(tmp_path, {
        "repro/mpi/collective/tags.py": "TAG_A = 1\nTAG_B = 2\n",
        "repro/core/a.py": 'ns = round_namespace("sc")\n',
        "repro/core/b.py": 'ns = round_namespace("ag", turn)\n'})
    assert "TAG01" not in codes(v)


# --------------------------------------------------------------- SUP01
# (the magic comment is assembled at runtime so the scanner doesn't
# read these fixture strings as suppressions *in this file*)
_SKIP = "# repro-" + "lint: skip=LEAK01"


def test_sup01_unjustified_suppression_is_flagged(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": f"""\
        def collect(sock):
            ev = sock.post_recv()  {_SKIP}
            return 1
    """})
    # the LEAK01 finding is silenced, but the naked skip becomes SUP01
    assert codes(v) == {"SUP01"}


def test_justified_suppression_silences_and_is_clean(tmp_path):
    v = lint_tree(tmp_path, {"repro/core/x.py": f"""\
        def collect(sock):
            ev = sock.post_recv()  {_SKIP} -- consumed by caller
            return 1
    """})
    assert v == []


# --------------------------------------------------------------- REG01
def _doc(name):
    def fn():
        pass
    fn.__doc__ = f"the {name} algorithm"
    fn.__name__ = name
    return fn


def _toy_tables():
    registry = {"bcast": {"fast": _doc("fast"), "slow": _doc("slow")},
                "scan": {"lin": _doc("lin")}}
    defaults = {"bcast": "fast", "scan": "lin"}
    auto = {"bcast": ("fast", "slow")}
    hier = {"bcast": "fast"}
    waivers = {"scan": "inherently serial"}
    coverage = {("bcast", "fast"): "models.bcast_fast",
                ("bcast", "slow"): "estimate: store-and-forward chain",
                ("scan", "lin"): "models.scan_lin"}
    return registry, defaults, auto, hier, waivers, coverage


def _check(resolvable=lambda dotted: True, **overrides):
    tables = dict(zip(
        ("registry", "defaults", "auto_choices", "hier_auto", "waivers",
         "coverage"), _toy_tables()))
    tables.update(overrides)
    return check_tables(tables["registry"], tables["defaults"],
                        tables["auto_choices"], tables["hier_auto"],
                        tables["waivers"], tables["coverage"],
                        resolvable=resolvable)


def test_reg01_consistent_toy_tables_are_clean():
    assert _check() == []


def test_reg01_flags_missing_docstring():
    registry, *_ = _toy_tables()
    registry["bcast"]["fast"].__doc__ = "   "
    assert any("docstring" in v.message
               for v in _check(registry=registry))


def test_reg01_flags_missing_default_and_policy_gap():
    assert any("DEFAULTS" in v.message
               for v in _check(defaults={"scan": "lin"}))
    assert any("no auto policy" in v.message
               for v in _check(waivers={}))


def test_reg01_flags_stale_waiver_and_stale_coverage():
    assert any("stale waiver" in v.message for v in _check(
        waivers={"scan": "x", "bcast": "already has a policy"}))
    cov = dict(_toy_tables()[5])
    cov[("gather", "gone")] = "models.gone"
    assert any("stale MODEL_COVERAGE" in v.message
               for v in _check(coverage=cov))


def test_reg01_flags_dangling_model_and_bare_estimate():
    assert any("does not resolve" in v.message
               for v in _check(resolvable=lambda d: False))
    cov = dict(_toy_tables()[5])
    cov[("scan", "lin")] = "estimate:"
    assert any("no rationale" in v.message for v in _check(coverage=cov))


def test_reg01_live_tables_are_consistent():
    import repro  # noqa: F401 - registers every implementation
    from repro.analysis.framecount import MODEL_COVERAGE
    from repro.mpi.collective import policy, registry

    assert check_tables(registry.REGISTRY, registry.DEFAULTS,
                        policy.AUTO_CHOICES, policy.HIER_AUTO,
                        policy.POLICY_WAIVERS, MODEL_COVERAGE) == []


# ------------------------------------------------------------ the repo
def test_repo_lints_clean():
    """The gate itself: the real tree has zero findings."""
    paths = [str(REPO / d)
             for d in ("src", "tests", "benchmarks", "examples")]
    violations, nfiles = lint_paths(paths)
    assert violations == [], "\n".join(str(v) for v in violations)
    assert nfiles > 100
