"""Many-to-many multicast (the paper's §5 future work), tested."""

import pytest

from repro.core.mcast_allgather import allgather_mcast_unpaced
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH)

QUIET_SW = quiet(FAST_ETHERNET_SWITCH)
QUIET_HUB = quiet(FAST_ETHERNET_HUB)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 9])
def test_paced_allgather_correct(n):
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        return (yield from env.comm.allgather(f"rank{env.rank}"))

    result = run_spmd(n, main, params=QUIET_SW)
    expected = [f"rank{r}" for r in range(n)]
    assert result.returns == [expected] * n


@pytest.mark.parametrize("topology", ["hub", "switch"])
def test_paced_allgather_both_topologies(topology):
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        return (yield from env.comm.allgather(env.rank * 11))

    result = run_spmd(5, main, topology=topology)
    assert result.returns == [[0, 11, 22, 33, 44]] * 5


def test_paced_allgather_no_drops_with_one_descriptor():
    """Pacing bounds the receiver's need to ONE outstanding receive."""

    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        out = yield from env.comm.allgather(bytes(2000))
        return len(out)

    result = run_spmd(8, main, params=QUIET_SW)
    assert result.returns == [8] * 8
    assert result.stats["drops_not_posted"] == 0


def test_paced_allgather_repeated_calls():
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        out = []
        for i in range(5):
            out.append((yield from env.comm.allgather((env.rank, i))))
        return out

    result = run_spmd(4, main, params=QUIET_SW)
    for got in result.returns:
        for i, round_result in enumerate(got):
            assert round_result == [(r, i) for r in range(4)]


def test_paced_allgather_matches_p2p_allgather():
    def main(env):
        p2p = yield from env.comm.allgather(env.rank)
        env.comm.use_collectives(allgather="mcast-paced")
        mc = yield from env.comm.allgather(env.rank)
        return p2p == mc

    result = run_spmd(6, main, params=QUIET_SW)
    assert all(result.returns)


# ---------------------------------------------------------------- overrun
def _unpaced(n, descriptors, size_bytes=1500, topology="switch"):
    def main(env):
        payload = bytes(size_bytes)
        results, lost = yield from allgather_mcast_unpaced(
            env.comm, payload, descriptors=descriptors)
        return lost

    params = QUIET_SW if topology == "switch" else QUIET_HUB
    result = run_spmd(n, main, params=params, topology=topology)
    return result.returns, result.stats


def test_unpaced_with_full_descriptors_no_loss():
    """With N-1 pre-posted descriptors even the burst is absorbed."""
    lost, stats = _unpaced(6, descriptors=5)
    assert lost == [0] * 6
    assert stats["drops_not_posted"] == 0


def test_unpaced_with_one_descriptor_overruns():
    """The paper's §5 fear, realized: N-1 simultaneous senders vs a
    single receive descriptor loses datagrams."""
    lost, stats = _unpaced(8, descriptors=1)
    assert any(n > 0 for n in lost)
    assert stats["drops_not_posted"] > 0


def test_unpaced_loss_decreases_with_budget():
    losses = []
    for k in (1, 3, 7):
        lost, _ = _unpaced(8, descriptors=k)
        losses.append(sum(lost))
    assert losses[0] >= losses[1] >= losses[2]
    assert losses[2] == 0


def test_unpaced_rejects_zero_descriptors():
    def main(env):
        with pytest.raises(ValueError):
            yield from allgather_mcast_unpaced(env.comm, b"", 0)

    run_spmd(2, main, params=QUIET_SW)


def test_unpaced_single_rank_trivial():
    def main(env):
        results, lost = yield from allgather_mcast_unpaced(
            env.comm, "me", descriptors=1)
        return (results, lost)

    result = run_spmd(1, main, params=QUIET_SW)
    assert result.returns[0] == (["me"], 0)


def test_unpaced_drain_cancels_every_leftover_descriptor():
    """Regression: the drain-timeout path used to cancel only the first
    untriggered descriptor.  The leftovers swallowed the next
    collective's multicast payload on the same channel, hanging a
    back-to-back unpaced → paced sequence."""

    def main(env):
        if env.rank == 5:
            # induced loss: rank 5 never sees contributions from 1,2,3,
            # so its drain times out with descriptors still posted
            env.comm.mcast.data_sock.drop_filter = (
                lambda dgram: dgram.kind == "mcast-data"
                and dgram.payload[0] in (1, 2, 3))
        results, lost = yield from allgather_mcast_unpaced(
            env.comm, bytes(1500), descriptors=2)
        env.comm.mcast.data_sock.drop_filter = None

        env.comm.use_collectives(allgather="mcast-paced")
        out = yield from env.comm.allgather(env.rank)   # hangs before fix
        return lost, out

    result = run_spmd(6, main, params=QUIET_SW)
    losses = [r[0] for r in result.returns]
    assert losses[5] == 3                   # the induced loss was real
    assert all(r[1] == list(range(6)) for r in result.returns)
    # and no descriptor survived into the paced collective
    assert result.stats["drops_induced"] == 3


def test_seg_paced_allgather_matches_paced_under_finite_budget():
    """Cross-impl agreement survives the §5 overrun scenario: with every
    rank on a 2-descriptor ring, the segmented allgather repairs its way
    to the same result the one-descriptor paced schedule produces."""

    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        a = yield from env.comm.allgather(bytes([env.rank]) * 8000)

        env.comm.use_collectives(allgather="mcast-seg-paced")
        env.comm.mcast.recv_budget = 2
        b = yield from env.comm.allgather(bytes([env.rank]) * 8000)
        env.comm.mcast.recv_budget = None
        return a == b

    result = run_spmd(4, main, params=QUIET_SW)
    assert all(result.returns)
