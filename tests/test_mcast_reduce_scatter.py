"""The reduction-side segmented collectives: ``mcast-seg-combine``
(reduce), ``mcast-seg-root`` (scatter) and the composed segmented
allreduce — correctness across roots/ops/payloads, NACK repair under
induced loss, and the closed-form frame counts."""

from dataclasses import replace

import numpy as np
import pytest

from repro import run_spmd
from repro.analysis.framecount import (model_seg_allreduce_frames,
                                       model_seg_reduce_frames,
                                       model_seg_scatter_frames)
from repro.core.segment import plan_segments
from repro.mpi.ops import MAX, SUM, Op
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = replace(QUIET, segment_bytes="auto")

#: associative but NOT commutative: list concatenation — detects any
#: fold-order violation immediately
CONCAT = Op("CONCAT", lambda a, b: a + b, commutative=False)


def drop_first_copy_of(indices):
    """Drop the first arrival of datagrams holding the given segment
    indices (per sender and sequence); second copies pass."""
    dropped = set()

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        root, seq, seg = dgram.payload
        segs = seg if isinstance(seg, tuple) else (seg,)
        for s in segs:
            key = (root, seq, s.index)
            if s.index in indices and key not in dropped:
                dropped.add(key)
                return True
        return False

    return flt


# --------------------------------------------------------------- reduce
@pytest.mark.parametrize("n", [1, 2, 4, 6])
@pytest.mark.parametrize("nbytes", [80, 5000, 20_000])
def test_seg_reduce_correct_lossless(n, nbytes):
    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        arr = np.full(nbytes // 8, float(env.rank + 1), dtype=np.float64)
        out = yield from env.comm.reduce(arr, SUM, 0)
        if env.rank != 0:
            return out is None
        return bool(np.all(out == sum(range(1, n + 1))))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [True] * n
    assert result.stats["retransmissions"] == 0


def test_seg_reduce_matches_p2p_and_folds_in_rank_order():
    """Non-commutative op: the fold must see operands in rank order,
    exactly like the binomial tree (at root 0, where the p2p tree's
    relative order coincides with absolute rank order)."""
    def main(env):
        env.comm.use_collectives(reduce="p2p-binomial")
        a = yield from env.comm.reduce([env.rank], CONCAT, 0)
        env.comm.use_collectives(reduce="mcast-seg-combine")
        b = yield from env.comm.reduce([env.rank], CONCAT, 0)
        return a == b and (env.rank != 0 or a == [0, 1, 2, 3, 4])

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [True] * 5


def test_seg_reduce_nonzero_root_keeps_canonical_order():
    """Unlike the p2p tree (which folds in rank order *relative to the
    root*), the turn-based reduce keeps MPI's canonical absolute rank
    order for every root."""
    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        out = yield from env.comm.reduce([env.rank], CONCAT, 2)
        return out == [0, 1, 2, 3, 4] if env.rank == 2 else out is None

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [True] * 5


def test_seg_reduce_nonzero_root_max_op():
    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        arr = np.full(600, float(env.rank), dtype=np.float64)
        out = yield from env.comm.reduce(arr, MAX, 3)
        if env.rank != 3:
            return out is None
        return bool(np.all(out == 3.0))

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [True] * 4


def test_seg_reduce_repairs_loss_at_the_root():
    """The root is the only consumer: its induced losses are repaired
    selectively by each turn's sender."""
    lost = {1, 3}

    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        if env.rank == 0:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of(lost)
        arr = np.full(1000, 1.0, dtype=np.float64)   # 8000 B = 6 segments
        out = yield from env.comm.reduce(arr, SUM, 0)
        return out is None or bool(np.all(out == 3.0))

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    # each of the two contributing turns repaired exactly the two lost
    # segments (explicit segment size: no repair re-batching)
    assert result.stats["retransmissions"] == 2 * len(lost)


def test_seg_reduce_loss_at_bystanders_is_free():
    """A bystander posts no descriptors, so multicast loss aimed at it
    costs nothing: no repairs, same frame count as loss-free."""
    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        if env.rank == 2:
            env.comm.mcast.data_sock.drop_filter = (
                lambda d: d.kind == "mcast-seg")
        arr = np.full(1000, 1.0, dtype=np.float64)
        out = yield from env.comm.reduce(arr, SUM, 0)
        return out is None or bool(np.all(out == 3.0))

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 0


def test_seg_reduce_frame_count_formula():
    size, n = 20_000, 4
    nsegs = len(plan_segments(size, QUIET.segment_bytes))

    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        arr = np.zeros(size // 8, dtype=np.float64)
        out = yield from env.comm.reduce(arr, SUM, 0)
        return out is None or bool(np.all(out == 0.0))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [True] * n
    kinds = result.stats["frames_by_kind"]
    observed = sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))
    assert observed == model_seg_reduce_frames(n, nsegs)
    assert kinds["mcast-seg"] == (n - 1) * nsegs
    assert kinds["mcast-seg-hdr"] == n - 1


# -------------------------------------------------------------- scatter
@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_seg_scatter_correct_lossless(n):
    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        objs = None
        if env.rank == 0:
            objs = [bytes([r]) * (3000 + r) for r in range(n)]
        out = yield from env.comm.scatter(objs, 0)
        return out == bytes([env.rank]) * (3000 + env.rank)

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [True] * n


def test_seg_scatter_nonzero_root_and_opaque_elements():
    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        objs = None
        if env.rank == 2:
            objs = [{"rank": r, "blob": list(range(700))}
                    for r in range(env.size)]
        out = yield from env.comm.scatter(objs, 2)
        return out == {"rank": env.rank, "blob": list(range(700))}

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [True] * 4


def test_seg_scatter_numpy_rows_via_uppercase_api():
    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        send = None
        if env.rank == 0:
            send = np.arange(4 * 500, dtype=np.float64).reshape(4, 500)
        recv = np.empty(500, dtype=np.float64)
        yield from env.comm.Scatter(send, recv, 0)
        return bool(np.all(recv == np.arange(500) + env.rank * 500))

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4


def test_seg_scatter_repairs_only_the_needing_rank():
    """A segment lost at the rank it is addressed to is repaired; the
    same loss at any other rank is ignored (it never needed it)."""
    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        # global stream: rank1 -> segments 0-2, rank2 -> 3-5 (4000 B
        # each at 1460); rank 2 drops its own first segment (index 3)
        if env.rank == 2:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({3})
        objs = None
        if env.rank == 0:
            objs = [bytes([r]) * 4000 for r in range(env.size)]
        out = yield from env.comm.scatter(objs, 0)
        return out == bytes([env.rank]) * 4000

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 1

    # the identical loss at rank 1 (who does not need segment 3) is free
    def main2(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({3})
        objs = None
        if env.rank == 0:
            objs = [bytes([r]) * 4000 for r in range(env.size)]
        out = yield from env.comm.scatter(objs, 0)
        return out == bytes([env.rank]) * 4000

    result = run_spmd(3, main2, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 0


def test_seg_scatter_frame_count_formula():
    n, per_rank = 4, 8000
    counts = [0] + [len(plan_segments(per_rank, QUIET.segment_bytes))] * 3

    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        objs = None
        if env.rank == 0:
            objs = [bytes(per_rank) for _ in range(n)]
        out = yield from env.comm.scatter(objs, 0)
        return len(out)

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [per_rank] * n
    kinds = result.stats["frames_by_kind"]
    observed = sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))
    assert observed == model_seg_scatter_frames(n, counts)
    # the root's own element never touched the wire
    assert kinds["mcast-seg"] == sum(counts)


def test_seg_scatter_validates_root_sequence():
    def main(env):
        env.comm.use_collectives(scatter="mcast-seg-root")
        objs = [b"x"] * 2 if env.rank == 0 else None   # wrong length
        out = yield from env.comm.scatter(objs, 0)
        return out

    with pytest.raises(ValueError, match="exactly 3 elements"):
        run_spmd(3, main, params=QUIET, max_sim_us=100_000.0)


# ------------------------------------------------------------ allreduce
@pytest.mark.parametrize("n", [1, 2, 5])
def test_seg_allreduce_correct(n):
    def main(env):
        env.comm.use_collectives(allreduce="mcast-seg-nack")
        arr = np.full(2000, float(env.rank + 1), dtype=np.float64)
        out = yield from env.comm.allreduce(arr, SUM)
        return bool(np.all(out == sum(range(1, n + 1))))

    result = run_spmd(n, main, params=AUTO)
    assert result.returns == [True] * n


def test_seg_allreduce_matches_p2p_and_survives_loss():
    def main(env):
        env.comm.use_collectives(allreduce="p2p-reduce-bcast")
        a = yield from env.comm.allreduce([env.rank], CONCAT)
        env.comm.use_collectives(allreduce="mcast-seg-nack")
        if env.rank == 0:
            # root loses reduce segments; rank 2 loses bcast segments
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({0})
        b = yield from env.comm.allreduce([env.rank], CONCAT)
        return a == b == [0, 1, 2, 3]

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4
    assert result.stats["retransmissions"] > 0


def test_seg_allreduce_frame_count_formula():
    size, n = 20_000, 4
    nsegs = len(plan_segments(size, QUIET.segment_bytes))

    def main(env):
        env.comm.use_collectives(allreduce="mcast-seg-nack")
        out = yield from env.comm.allreduce(bytes(size), CONCAT)
        return len(out)

    result = run_spmd(n, main, params=QUIET)
    # CONCAT over equal byte strings: result is n*size bytes at every rank
    assert result.returns == [n * size] * n

    def main2(env):
        env.comm.use_collectives(allreduce="mcast-seg-nack")
        arr = np.zeros(size // 8, dtype=np.float64)
        out = yield from env.comm.allreduce(arr, SUM)
        return out is not None

    result = run_spmd(n, main2, params=QUIET)
    assert result.returns == [True] * n
    kinds = result.stats["frames_by_kind"]
    observed = sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))
    assert observed == model_seg_allreduce_frames(n, nsegs)
    assert kinds["mcast-seg"] == n * nsegs


# ----------------------------------------------------------- interleave
def test_reduction_collectives_interleave_on_one_channel():
    """Back-to-back segmented reduce/scatter/allreduce/bcast/barrier on
    the same channel: sequence numbers and round namespaces keep every
    collective's traffic separate, and the schedule stays §4-safe."""
    def main(env):
        comm = env.comm
        comm.use_collectives(reduce="mcast-seg-combine",
                             scatter="mcast-seg-root",
                             allreduce="mcast-seg-nack",
                             bcast="mcast-seg-nack", barrier="mcast")
        got = []
        total = yield from comm.reduce([env.rank], CONCAT, 0)
        got.append(env.rank != 0 or total == [0, 1, 2, 3])
        yield from comm.barrier()
        objs = ([bytes([r]) * 2000 for r in range(4)]
                if env.rank == 0 else None)
        mine = yield from comm.scatter(objs, 0)
        got.append(mine == bytes([env.rank]) * 2000)
        summed = yield from comm.allreduce(
            np.full(500, 1.0, dtype=np.float64), SUM)
        got.append(bool(np.all(summed == 4.0)))
        blob = yield from comm.bcast(
            bytes(10_000) if env.rank == 0 else None, 0)
        got.append(len(blob) == 10_000)
        return all(got)

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [True] * 4
    result.verify_safe_schedules()


# ---------------------------------------------------------------- gather
@pytest.mark.parametrize("n", [1, 2, 4, 6])
@pytest.mark.parametrize("root", [0, 1])
def test_seg_gather_correct_lossless(n, root):
    if root >= n:
        pytest.skip("root out of range")

    def main(env):
        env.comm.use_collectives(gather="mcast-seg-root-follow")
        out = yield from env.comm.gather(bytes([env.rank]) * 4000, root)
        if env.rank == root:
            return out == [bytes([r]) * 4000 for r in range(env.size)]
        return out is None

    result = run_spmd(n, main, params=AUTO)
    assert result.returns == [True] * n


def test_seg_gather_matches_p2p_payload_frames():
    """Many-to-one: the turn-based gather must not exceed the binomial
    tree's payload frame count (the engine's reliability is free in
    frames, like the segmented reduce)."""
    nbytes = 20_000

    def run(impl):
        def main(env):
            env.comm.use_collectives(gather=impl)
            out = yield from env.comm.gather(bytes(nbytes), 0)
            return out is None or len(out) == env.size
        result = run_spmd(4, main, params=AUTO)
        assert all(result.returns)
        return result.stats["frames_by_kind"]

    seg = run("mcast-seg-root-follow").get("mcast-seg", 0)
    p2p_kinds = run("p2p-binomial")
    assert seg <= p2p_kinds.get("p2p", 0)


def test_seg_gather_repairs_loss_at_the_root():
    """Only the root consumes: induced first-copy loss there is repaired
    selectively, and bystander loss costs nothing."""
    nsegs = len(plan_segments(20_000, QUIET.segment_bytes))

    def main(env):
        env.comm.use_collectives(gather="mcast-seg-root-follow")
        if env.rank == 0:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of(
                {0, 5})
        out = yield from env.comm.gather(bytes([env.rank]) * 20_000, 0)
        if env.rank == 0:
            return out == [bytes([r]) * 20_000 for r in range(env.size)]
        return out is None

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4
    # two lost segments per contributing turn, re-multicast exactly once
    assert result.stats["retransmissions"] == 3 * 2
    assert (result.stats["frames_by_kind"]["mcast-seg"]
            == 3 * (nsegs + 2))


def test_seg_gather_interleaves_with_reduce_on_one_channel():
    def main(env):
        env.comm.use_collectives(gather="mcast-seg-root-follow",
                                 reduce="mcast-seg-combine")
        got = yield from env.comm.gather(str(env.rank), 1)
        folded = yield from env.comm.reduce(str(env.rank), CONCAT, 1)
        if env.rank == 1:
            return got == [str(r) for r in range(env.size)], folded
        return got is None, folded

    result = run_spmd(5, main, params=AUTO)
    assert result.returns[1] == (True, "01234")
    result.verify_safe_schedules()
