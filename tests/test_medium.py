"""CSMA/CD shared-medium (hub) behaviour tests."""

import random

import pytest

from repro.simnet.calibration import FAST_ETHERNET_HUB, quiet
from repro.simnet.frame import Frame
from repro.simnet.kernel import Simulator
from repro.simnet.medium import ExcessiveCollisions, SharedMedium
from repro.simnet.stats import NetStats


class FakeNic:
    """Records deliveries; accepts everything."""

    def __init__(self, mac):
        self.mac = mac
        self.received = []

    def deliver(self, frame):
        self.received.append(frame)
        return True


def make_medium(n_nics=3, seed=0):
    sim = Simulator()
    stats = NetStats()
    medium = SharedMedium(sim, quiet(FAST_ETHERNET_HUB),
                          rng=random.Random(seed), stats=stats)
    nics = [FakeNic(i) for i in range(n_nics)]
    for nic in nics:
        medium.attach(nic)
    return sim, medium, nics, stats


def test_single_transmission_delivers_to_all_others():
    sim, medium, nics, stats = make_medium()
    frame = Frame(src=0, dst=1, size=100, payload="x")
    done = medium.transmit(nics[0], frame)
    sim.run()
    assert done.ok and done.value is True
    assert [f.payload for f in nics[1].received] == ["x"]
    assert [f.payload for f in nics[2].received] == ["x"]
    assert nics[0].received == []          # sender hears nothing back
    assert stats.frames_sent == 1
    assert stats.collisions == 0


def test_wire_time_matches_frame_size():
    sim, medium, nics, _ = make_medium()
    frame = Frame(src=0, dst=1, size=1462, payload=None)  # 1500 wire bytes
    medium.transmit(nics[0], frame)
    sim.run()
    assert sim.now == pytest.approx(120.0)  # 1500 B / 12.5 B/µs


def test_busy_medium_defers_second_sender():
    sim, medium, nics, stats = make_medium()
    f0 = Frame(src=0, dst=2, size=1462, payload="first")
    f1 = Frame(src=1, dst=2, size=100, payload="second")
    medium.transmit(nics[0], f0)
    # Second transmit requested mid-first-transmission: must defer, not collide.
    sim.schedule_call(10.0, medium.transmit, nics[1], f1)
    sim.run()
    assert stats.collisions == 0
    payloads = [f.payload for f in nics[2].received]
    assert payloads == ["first", "second"]


def test_simultaneous_start_collides_then_resolves():
    sim, medium, nics, stats = make_medium(seed=1)
    f0 = Frame(src=0, dst=2, size=100, payload="a")
    f1 = Frame(src=1, dst=2, size=100, payload="b")
    d0 = medium.transmit(nics[0], f0)
    d1 = medium.transmit(nics[1], f1)
    sim.run()
    assert stats.collisions >= 1
    assert d0.ok and d1.ok
    assert sorted(f.payload for f in nics[2].received) == ["a", "b"]


def test_deferred_senders_released_together_collide():
    """Two stations queued behind a long frame start simultaneously on
    idle — the pile-up collision the paper blames for hub variance."""
    sim, medium, nics, stats = make_medium(n_nics=4, seed=2)
    long_frame = Frame(src=0, dst=3, size=1462, payload="long")
    medium.transmit(nics[0], long_frame)
    sim.schedule_call(5.0, medium.transmit, nics[1],
                      Frame(src=1, dst=3, size=50, payload="w1"))
    sim.schedule_call(6.0, medium.transmit, nics[2],
                      Frame(src=2, dst=3, size=50, payload="w2"))
    sim.run()
    assert stats.collisions >= 1
    assert sorted(f.payload for f in nics[3].received) == ["long", "w1", "w2"]


def test_excessive_collisions_fails_send():
    """With backoff forced to zero slots, colliders re-collide forever and
    hit the 16-attempt limit."""

    class ZeroRng:
        def randrange(self, a, b=None):
            return 0

    sim = Simulator()
    stats = NetStats()
    medium = SharedMedium(sim, quiet(FAST_ETHERNET_HUB), rng=ZeroRng(),
                          stats=stats)
    nics = [FakeNic(0), FakeNic(1), FakeNic(2)]
    for nic in nics:
        medium.attach(nic)
    d0 = medium.transmit(nics[0], Frame(src=0, dst=2, size=10, payload="a"))
    d1 = medium.transmit(nics[1], Frame(src=1, dst=2, size=10, payload="b"))
    failures = []

    def watcher():
        try:
            yield d0
        except ExcessiveCollisions as exc:
            failures.append(exc)
        try:
            yield d1
        except ExcessiveCollisions as exc:
            failures.append(exc)

    sim.process(watcher())
    sim.run()
    assert len(failures) == 2
    assert all(f.attempts == 16 for f in failures)
    assert stats.collisions == 16


def test_collision_count_and_backoff_stats():
    sim, medium, nics, stats = make_medium(seed=3)
    for i in range(2):
        medium.transmit(nics[i], Frame(src=i, dst=2, size=10, payload=i))
    sim.run()
    assert stats.backoffs >= 2  # both stations backed off at least once


def test_medium_idle_property():
    sim, medium, nics, _ = make_medium()
    assert medium.idle
    medium.transmit(nics[0], Frame(src=0, dst=1, size=100, payload=None))
    sim.run()
    assert medium.idle


def test_throughput_serializes_back_to_back_frames():
    """A single station sending frame-after-frame (as the NIC layer does:
    next transmit only after the previous completes) achieves exactly the
    wire rate — wire size already includes the inter-frame gap."""
    sim, medium, nics, stats = make_medium()

    def station():
        for i in range(3):
            done = medium.transmit(
                nics[0], Frame(src=0, dst=1, size=962, payload=i))
            yield done  # 1000 B wire = 80 µs each

    sim.process(station())
    sim.run()
    assert stats.frames_sent == 3
    assert stats.collisions == 0
    assert sim.now == pytest.approx(3 * 80.0)


def test_concurrent_same_nic_requests_collide_like_stations():
    """Raw medium.transmit calls are station attempts: overlapping
    requests (even from one NIC object) contend.  The NIC layer is what
    serializes a real station's queue — checked in test_nic.py."""
    sim, medium, nics, stats = make_medium(seed=5)
    for i in range(2):
        medium.transmit(nics[0], Frame(src=0, dst=1, size=100, payload=i))
    sim.run()
    assert stats.frames_sent == 2
    assert stats.collisions >= 1
