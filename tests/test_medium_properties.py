"""Property-based tests for the CSMA/CD medium and the event kernel."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simnet.calibration import FAST_ETHERNET_HUB, quiet
from repro.simnet.frame import Frame
from repro.simnet.kernel import Simulator
from repro.simnet.medium import SharedMedium
from repro.simnet.stats import NetStats

PARAMS = quiet(FAST_ETHERNET_HUB)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class RecordingNic:
    def __init__(self, mac):
        self.mac = mac
        self.received = []

    def deliver(self, frame):
        self.received.append(frame)
        return True


@settings(max_examples=40, **COMMON)
@given(
    n_nics=st.integers(min_value=2, max_value=6),
    loads=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),     # sender index
            st.integers(min_value=0, max_value=3000),  # start time µs
            st.integers(min_value=0, max_value=1500),  # payload bytes
        ),
        min_size=1, max_size=20),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_csma_cd_delivers_everything_exactly_once(n_nics, loads, seed):
    """Under arbitrary offered load, every frame is eventually delivered
    to every *other* station exactly once (CSMA/CD is lossy only past 16
    collisions, which random backoff makes effectively unreachable)."""
    sim = Simulator()
    stats = NetStats()
    medium = SharedMedium(sim, PARAMS, rng=random.Random(seed),
                          stats=stats)
    nics = [RecordingNic(i) for i in range(n_nics)]
    for nic in nics:
        medium.attach(nic)

    sent = []
    for sender_idx, start, size in loads:
        sender = sender_idx % n_nics
        frame = Frame(src=sender, dst=0xFFFF_FFFF_FFFF, size=size,
                      payload=len(sent))
        sent.append((sender, frame))
        sim.schedule_call(float(start), medium.transmit, nics[sender],
                          frame)
    sim.run()

    assert stats.frames_sent == len(sent)
    for sender, frame in sent:
        for nic in nics:
            copies = [f for f in nic.received
                      if f.frame_id == frame.frame_id]
            if nic.mac == sender:
                assert copies == []
            else:
                assert len(copies) == 1


@settings(max_examples=25, **COMMON)
@given(
    loads=st.lists(st.integers(min_value=0, max_value=1000),
                   min_size=2, max_size=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_csma_cd_wire_occupancy_at_most_total_plus_backoff(loads, seed):
    """The clock at drain is at least the sum of wire times (one wire!)
    and collisions only ever add time."""
    sim = Simulator()
    stats = NetStats()
    medium = SharedMedium(sim, PARAMS, rng=random.Random(seed),
                          stats=stats)
    nics = [RecordingNic(i) for i in range(len(loads))]
    for nic in nics:
        medium.attach(nic)
    total_wire = 0.0
    for i, size in enumerate(loads):
        frame = Frame(src=i, dst=0xFFFF_FFFF_FFFF, size=size, payload=i)
        total_wire += frame.wire_time_us(PARAMS.rate_mbps)
        medium.transmit(nics[i], frame)
    end = sim.run()
    assert end >= total_wire - 1e-6


@settings(max_examples=40, **COMMON)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=12),
)
def test_kernel_event_order_is_time_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule_call(d, fired.append, (d, i))
    sim.run()
    assert [d for d, _i in fired] == sorted(d for d in delays)
    # ties keep insertion order
    assert fired == sorted(fired, key=lambda pair: (pair[0], pair[1]))


@settings(max_examples=30, **COMMON)
@given(
    n_events=st.integers(min_value=1, max_value=8),
    fire_at=st.lists(st.floats(min_value=0.1, max_value=50.0),
                     min_size=8, max_size=8),
)
def test_any_of_fires_at_minimum_all_of_at_maximum(n_events, fire_at):
    sim = Simulator()
    times = fire_at[:n_events]
    evs_any = [sim.timeout(t) for t in times]
    evs_all = [sim.timeout(t) for t in times]
    moments = {}

    def waiter(cond, key):
        yield cond
        moments[key] = sim.now

    sim.process(waiter(sim.any_of(evs_any), "any"))
    sim.process(waiter(sim.all_of(evs_all), "all"))
    sim.run()
    assert moments["any"] == min(times)
    assert moments["all"] == max(times)
