"""MPICH-style (p2p) collective algorithm correctness tests."""

import numpy as np
import pytest

from repro.mpi import MAX, MAXLOC, MIN, Op, PROD, SUM
from repro.mpi.collective.barrier_p2p import (barrier_message_count,
                                              largest_power_of_two_leq)
from repro.mpi.collective.bcast_p2p import (binomial_children,
                                            binomial_parent)
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
SIZES = [1, 2, 3, 4, 5, 7, 8, 9]


# ---------------------------------------------------------------- tree shape
def test_binomial_tree_matches_paper_figure2():
    """7 processes: root 0 sends to 4, 2, 1; 2 -> 3; 4 -> 6, 5."""
    assert binomial_children(0, 7) == [4, 2, 1]
    assert binomial_children(2, 7) == [3]
    assert binomial_children(4, 7) == [6, 5]
    assert binomial_children(1, 7) == []
    assert binomial_parent(3) == 2
    assert binomial_parent(5) == 4
    assert binomial_parent(4) == 0


def test_binomial_tree_is_a_spanning_tree():
    for n in range(2, 33):
        edges = {(binomial_parent(r), r) for r in range(1, n)}
        assert len(edges) == n - 1
        children = {c for _p, c in edges}
        assert children == set(range(1, n))
        for p, _c in edges:
            assert 0 <= p < n


def test_largest_power_of_two():
    assert largest_power_of_two_leq(1) == 1
    assert largest_power_of_two_leq(7) == 4
    assert largest_power_of_two_leq(8) == 8
    assert largest_power_of_two_leq(9) == 8
    with pytest.raises(ValueError):
        largest_power_of_two_leq(0)


def test_barrier_message_count_formula():
    # paper: 2(N-K) + K log2 K
    assert barrier_message_count(7) == 2 * 3 + 4 * 2
    assert barrier_message_count(8) == 8 * 3
    assert barrier_message_count(9) == 2 * 1 + 8 * 3


# ---------------------------------------------------------------- bcast
@pytest.mark.parametrize("n", SIZES)
def test_bcast_binomial_delivers_everywhere(n):
    def main(env):
        obj = {"v": 42} if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return obj["v"]

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [42] * n


@pytest.mark.parametrize("root", [0, 1, 3, 6])
def test_bcast_nonzero_root(root):
    def main(env):
        obj = "payload" if env.rank == root else None
        obj = yield from env.comm.bcast(obj, root=root)
        return obj

    result = run_spmd(7, main, params=QUIET)
    assert result.returns == ["payload"] * 7


def test_bcast_linear_impl_selectable():
    def main(env):
        env.comm.use_collectives(bcast="p2p-linear")
        obj = env.rank if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        return obj

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [0] * 5


# ---------------------------------------------------------------- barrier
@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronizes(n):
    """No rank may leave the barrier before the last rank has entered."""

    def main(env):
        yield env.sim.timeout(100.0 * env.rank)   # staggered entry
        entered = env.sim.now
        yield from env.comm.barrier()
        left = env.sim.now
        return (entered, left)

    result = run_spmd(n, main, params=QUIET)
    last_entry = max(e for e, _l in result.returns)
    for _entered, left in result.returns:
        assert left >= last_entry


# ---------------------------------------------------------------- reduce & co
@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def main(env):
        total = yield from env.comm.reduce(env.rank + 1, SUM, root=0)
        return total

    result = run_spmd(n, main, params=QUIET)
    assert result.returns[0] == n * (n + 1) // 2
    assert all(r is None for r in result.returns[1:])


def test_reduce_respects_operand_order():
    """Non-commutative op: operands must combine in rank order."""
    concat = SUM  # string + is associative, not commutative

    def main(env):
        out = yield from env.comm.reduce(str(env.rank), concat, root=0)
        return out

    result = run_spmd(6, main, params=QUIET)
    assert result.returns[0] == "012345"


def test_reduce_non_commutative_nonzero_root_canonical_order():
    """Regression (ROADMAP PR 3 follow-up): the binomial tree rooted at
    a nonzero rank folded operands in *root-relative* order, so a
    non-commutative op at root=2 on 6 ranks produced "234501".  MPI
    requires canonical absolute-rank order; the fixed tree reduces to
    rank 0 and forwards, like MPICH."""
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        out = yield from env.comm.reduce(str(env.rank), concat, root=2)
        return out

    result = run_spmd(6, main, params=QUIET)
    assert result.returns[2] == "012345"
    assert all(r is None for i, r in enumerate(result.returns) if i != 2)


def test_reduce_non_commutative_matches_seg_combine_at_nonzero_root():
    """The p2p tree and the segmented multicast reduce must agree on
    operand order for non-commutative ops at any root."""
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        env.comm.use_collectives(reduce="mcast-seg-combine")
        seg = yield from env.comm.reduce(str(env.rank), concat, root=3)
        env.comm.use_collectives(reduce="p2p-binomial")
        p2p = yield from env.comm.reduce(str(env.rank), concat, root=3)
        return seg, p2p

    result = run_spmd(5, main, params=QUIET)
    assert result.returns[3] == ("01234", "01234")


@pytest.mark.parametrize("op,expect", [
    (MAX, 8), (MIN, 0), (PROD, 0),
])
def test_reduce_various_ops(op, expect):
    def main(env):
        return (yield from env.comm.reduce(env.rank, op, root=0))

    result = run_spmd(9, main, params=QUIET)
    assert result.returns[0] == expect


def test_maxloc_finds_rank():
    def main(env):
        value = 100 - abs(env.rank - 3)     # peak at rank 3
        return (yield from env.comm.reduce((value, env.rank), MAXLOC,
                                           root=0))

    result = run_spmd(7, main, params=QUIET)
    assert result.returns[0] == (100, 3)


@pytest.mark.parametrize("n", SIZES)
def test_allreduce(n):
    def main(env):
        return (yield from env.comm.allreduce(env.rank, SUM))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [n * (n - 1) // 2] * n


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def main(env):
        return (yield from env.comm.gather(env.rank * 10, root=0))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns[0] == [r * 10 for r in range(n)]
    assert all(r is None for r in result.returns[1:])


def test_gather_nonzero_root():
    def main(env):
        return (yield from env.comm.gather(chr(65 + env.rank), root=2))

    result = run_spmd(5, main, params=QUIET)
    assert result.returns[2] == ["A", "B", "C", "D", "E"]


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def main(env):
        objs = [f"item{r}" for r in range(n)] if env.rank == 0 else None
        return (yield from env.comm.scatter(objs, root=0))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [f"item{r}" for r in range(n)]


def test_scatter_wrong_length_raises():
    def main(env):
        objs = ["only-one"] if env.rank == 0 else None
        with pytest.raises(ValueError):
            yield from env.comm.scatter(objs, root=0)

    # Other ranks would block forever; bound the run.
    run_spmd(3, main, params=QUIET, max_sim_us=1e6)


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def main(env):
        return (yield from env.comm.allgather(env.rank ** 2))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [[r * r for r in range(n)]] * n


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_alltoall(n):
    def main(env):
        objs = [(env.rank, dst) for dst in range(n)]
        return (yield from env.comm.alltoall(objs))

    result = run_spmd(n, main, params=QUIET)
    for r in range(n):
        assert result.returns[r] == [(src, r) for src in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scan(n):
    def main(env):
        return (yield from env.comm.scan(env.rank + 1, SUM))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [sum(range(1, r + 2)) for r in range(n)]


# ---------------------------------------------------------------- buffers
def test_Bcast_numpy():
    def main(env):
        buf = (np.arange(50, dtype=np.float64) if env.rank == 0
               else np.empty(50, dtype=np.float64))
        yield from env.comm.Bcast(buf, root=0)
        return float(buf.sum())

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [float(np.arange(50).sum())] * 4


def test_Reduce_Allreduce_numpy_elementwise():
    def main(env):
        send = np.full(8, env.rank, dtype=np.int64)
        recv = np.empty(8, dtype=np.int64)
        yield from env.comm.Allreduce(send, recv, SUM)
        return recv.tolist()

    n = 5
    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [[n * (n - 1) // 2] * 8] * n


def test_Gather_Scatter_numpy():
    def main(env):
        n = env.size
        send = np.full(4, env.rank, dtype=np.int32)
        recv = np.empty((n, 4), dtype=np.int32) if env.rank == 0 else None
        yield from env.comm.Gather(send, recv, root=0)
        if env.rank == 0:
            out = np.empty(4, dtype=np.int32)
            yield from env.comm.Scatter(recv * 2, out, root=0)
            return out.tolist()
        out = np.empty(4, dtype=np.int32)
        yield from env.comm.Scatter(None, out, root=0)
        return out.tolist()

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [[2 * r] * 4 for r in range(3)]


# ---------------------------------------------------------------- dup/split
def test_split_into_even_odd():
    def main(env):
        sub = yield from env.comm.split(color=env.rank % 2, key=env.rank)
        val = yield from sub.allgather(env.rank)
        return (sub.rank, sub.size, val)

    result = run_spmd(6, main, params=QUIET)
    for rank, (sub_rank, sub_size, members) in enumerate(result.returns):
        assert sub_size == 3
        assert members == ([0, 2, 4] if rank % 2 == 0 else [1, 3, 5])
        assert sub_rank == rank // 2


def test_split_undefined_returns_none():
    def main(env):
        color = 0 if env.rank < 2 else None
        sub = yield from env.comm.split(color=color, key=env.rank)
        if sub is None:
            return "excluded"
        return (yield from sub.allgather(env.rank))

    result = run_spmd(4, main, params=QUIET)
    assert result.returns[0] == [0, 1]
    assert result.returns[2] == "excluded"
    assert result.returns[3] == "excluded"


def test_split_key_reorders_ranks():
    def main(env):
        sub = yield from env.comm.split(color=0, key=-env.rank)
        return (yield from sub.gather(env.rank, root=0))

    result = run_spmd(4, main, params=QUIET)
    # key = -rank: new rank 0 is old rank 3
    assert result.returns[3] == [3, 2, 1, 0]
