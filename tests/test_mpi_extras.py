"""exscan, reduce_scatter, iprobe, waitany/waitsome."""

import pytest

from repro.mpi import SUM, waitall, waitany, waitsome
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_exscan(n):
    def main(env):
        return (yield from env.comm.exscan(env.rank + 1, SUM))

    result = run_spmd(n, main, params=QUIET)
    assert result.returns[0] is None
    for r in range(1, n):
        assert result.returns[r] == sum(range(1, r + 1))


def test_exscan_string_order():
    def main(env):
        return (yield from env.comm.exscan(str(env.rank), SUM))

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [None, "0", "01", "012", "0123"]


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_reduce_scatter(n):
    def main(env):
        # rank r contributes the vector [r*n + j for j in range(n)]
        objs = [env.rank * 10 + j for j in range(n)]
        return (yield from env.comm.reduce_scatter(objs, SUM))

    result = run_spmd(n, main, params=QUIET)
    # block j = sum over ranks of (rank*10 + j)
    ranks_sum = sum(range(n)) * 10
    assert result.returns == [ranks_sum + j * n for j in range(n)]


def test_reduce_scatter_wrong_length():
    def main(env):
        with pytest.raises(ValueError):
            yield from env.comm.reduce_scatter([1], SUM)

    run_spmd(3, main, params=QUIET, max_sim_us=1e6)


def test_iprobe_sees_unexpected_then_recv_consumes():
    def main(env):
        if env.rank == 0:
            yield from env.comm.send("probe-me", dest=1, tag=7)
            return None
        # Give the message time to arrive unexpected.
        yield env.sim.timeout(2000.0)
        status = env.comm.iprobe(source=0, tag=7)
        empty = env.comm.iprobe(source=0, tag=99)
        data = yield from env.comm.recv(source=0, tag=7)
        after = env.comm.iprobe(source=0, tag=7)
        return (status.Get_source(), status.Get_count() > 0, empty,
                data, after)

    result = run_spmd(2, main, params=QUIET)
    src, has_count, empty, data, after = result.returns[1]
    assert src == 0 and has_count and empty is None
    assert data == "probe-me" and after is None


def test_waitany_returns_first_completion():
    def main(env):
        if env.rank == 0:
            reqs = [env.comm.irecv(source=1, tag=t) for t in (1, 2, 3)]
            idx, data = yield from waitany(reqs)
            rest = yield from waitall([r for i, r in enumerate(reqs)
                                       if i != idx])
            return (idx, data, sorted(rest))
        yield env.sim.timeout(500.0)
        yield from env.comm.send("second", dest=0, tag=2)   # tag 2 first
        yield env.sim.timeout(500.0)
        yield from env.comm.send("first", dest=0, tag=1)
        yield from env.comm.send("third", dest=0, tag=3)

    result = run_spmd(2, main, params=QUIET)
    idx, data, rest = result.returns[0]
    assert (idx, data) == (1, "second")
    assert rest == ["first", "third"]


def test_waitany_already_complete_returns_immediately():
    def main(env):
        if env.rank == 0:
            yield from env.comm.send("x", dest=1, tag=0)
            return None
        yield env.sim.timeout(2000.0)
        req = env.comm.irecv(source=0, tag=0)
        # drain it first so it's already complete
        data = yield from req.wait()
        idx, same = yield from waitany([req])
        return (idx, data, same)

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == (0, "x", "x")


def test_waitany_empty_rejected():
    def main(env):
        with pytest.raises(ValueError):
            yield from waitany([])

    run_spmd(1, main, params=QUIET)


def test_waitsome_collects_simultaneous_completions():
    def main(env):
        if env.rank == 0:
            reqs = [env.comm.irecv(source=1, tag=t) for t in (1, 2)]
            yield env.sim.timeout(5000.0)   # let both arrive + match
            pairs = yield from waitsome(reqs)
            return sorted(pairs)
        yield from env.comm.send("a", dest=0, tag=1)
        yield from env.comm.send("b", dest=0, tag=2)

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[0] == [(0, "a"), (1, "b")]
