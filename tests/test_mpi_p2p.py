"""MPI point-to-point engine tests: matching, wildcards, protocols."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld, Status
from repro.runtime import run_spmd
from repro.simnet import build_cluster, quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_send_recv_roundtrip():
    def main(env):
        if env.rank == 0:
            yield from env.comm.send({"x": 1}, dest=1, tag=7)
            reply = yield from env.comm.recv(source=1, tag=8)
            return reply
        else:
            data = yield from env.comm.recv(source=0, tag=7)
            yield from env.comm.send(data["x"] + 1, dest=0, tag=8)
            return None

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[0] == 2


def test_tag_matching_out_of_order():
    """A recv for tag 2 must skip an earlier tag-1 message."""

    def main(env):
        if env.rank == 0:
            yield from env.comm.send("first", dest=1, tag=1)
            yield from env.comm.send("second", dest=1, tag=2)
        else:
            two = yield from env.comm.recv(source=0, tag=2)
            one = yield from env.comm.recv(source=0, tag=1)
            return (one, two)

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == ("first", "second")


def test_any_source_any_tag():
    def main(env):
        if env.rank == 0:
            got = []
            for _ in range(2):
                status = Status()
                data = yield from env.comm.recv(source=ANY_SOURCE,
                                                tag=ANY_TAG, status=status)
                got.append((data, status.Get_source(), status.Get_tag()))
            return sorted(got)
        else:
            yield env.sim.timeout(env.rank * 50.0)
            yield from env.comm.send(f"from{env.rank}", dest=0,
                                     tag=env.rank * 10)

    result = run_spmd(3, main, params=QUIET)
    assert result.returns[0] == [("from1", 1, 10), ("from2", 2, 20)]


def test_non_overtaking_same_pair_same_tag():
    def main(env):
        if env.rank == 0:
            for i in range(10):
                yield from env.comm.send(i, dest=1, tag=0)
        else:
            got = []
            for _ in range(10):
                got.append((yield from env.comm.recv(source=0, tag=0)))
            return got

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == list(range(10))


def test_isend_irecv_overlap():
    def main(env):
        if env.rank == 0:
            reqs = [env.comm.isend(i, dest=1, tag=i) for i in range(4)]
            for req in reqs:
                yield from req.wait()
        else:
            reqs = [env.comm.irecv(source=0, tag=i) for i in range(4)]
            out = []
            for req in reqs:
                out.append((yield from req.wait()))
            return out

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == [0, 1, 2, 3]


def test_sendrecv_exchanges_without_deadlock():
    def main(env):
        partner = 1 - env.rank
        data = yield from env.comm.sendrecv(f"hi-{env.rank}", dest=partner,
                                            sendtag=0, source=partner,
                                            recvtag=0)
        return data

    result = run_spmd(2, main, params=QUIET)
    assert result.returns == ["hi-1", "hi-0"]


def test_rendezvous_protocol_for_large_messages():
    """Messages above the eager threshold travel via RTS/CTS."""

    def main(env):
        big = np.arange(8192, dtype=np.float64)    # 64 KB > 16 KB threshold
        if env.rank == 0:
            yield from env.comm.send(big, dest=1)
        else:
            data = yield from env.comm.recv(source=0)
            return float(data.sum())

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == float(np.arange(8192).sum())
    kinds = result.stats["frames_by_kind"]
    assert kinds.get("p2p-rts", 0) == 1
    assert kinds.get("p2p-cts", 0) == 1


def test_eager_below_threshold_has_no_handshake():
    def main(env):
        if env.rank == 0:
            yield from env.comm.send(b"x" * 1000, dest=1)
        else:
            yield from env.comm.recv(source=0)

    result = run_spmd(2, main, params=QUIET)
    kinds = result.stats["frames_by_kind"]
    assert "p2p-rts" not in kinds
    assert "p2p-cts" not in kinds


def test_unexpected_message_queue_holds_early_sends():
    def main(env):
        if env.rank == 0:
            yield from env.comm.send("early", dest=1, tag=5)
        else:
            yield env.sim.timeout(3000.0)   # receive long after arrival
            data = yield from env.comm.recv(source=0, tag=5)
            return data

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == "early"


def test_buffer_api_send_recv():
    def main(env):
        if env.rank == 0:
            buf = np.arange(100, dtype=np.int32)
            yield from env.comm.Send(buf, dest=1, tag=3)
        else:
            buf = np.empty(100, dtype=np.int32)
            yield from env.comm.Recv(buf, source=0, tag=3)
            return int(buf.sum())

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == sum(range(100))


def test_request_test_polls_without_blocking():
    def main(env):
        if env.rank == 0:
            req = env.comm.irecv(source=1, tag=0)
            ok_before, _ = req.test()
            data = yield from req.wait()
            ok_after, data2 = req.test()
            return (ok_before, ok_after, data, data2)
        else:
            yield env.sim.timeout(200.0)
            yield from env.comm.send("late", dest=0, tag=0)

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[0] == (False, True, "late", "late")


def test_context_isolation_between_communicators():
    """p2p on a dup'ed communicator must not match COMM_WORLD traffic."""

    def main(env):
        comm2 = yield from env.comm.dup()
        if env.rank == 0:
            yield from env.comm.send("world", dest=1, tag=0)
            yield from comm2.send("dup", dest=1, tag=0)
        else:
            on_dup = yield from comm2.recv(source=0, tag=0)
            on_world = yield from env.comm.recv(source=0, tag=0)
            return (on_world, on_dup)

    result = run_spmd(2, main, params=QUIET)
    assert result.returns[1] == ("world", "dup")


def test_send_to_invalid_rank_raises():
    def main(env):
        if env.rank == 0:
            with pytest.raises(ValueError):
                env.comm.isend("x", dest=5)
        yield env.sim.timeout(1.0)

    run_spmd(2, main, params=QUIET)


def test_world_endpoint_counters():
    cluster = build_cluster(2, "switch", params=QUIET)
    world = MpiWorld(cluster)

    def main0():
        comm = world.comm_world(0)
        yield from comm._setup()
        yield from comm.send("m", dest=1)

    def main1():
        comm = world.comm_world(1)
        yield from comm._setup()
        yield from comm.recv(source=0)

    cluster.sim.process(main0())
    cluster.sim.process(main1())
    cluster.sim.run()
    assert world.endpoints[0].sent_messages >= 1
    assert world.endpoints[1].received_messages >= 1
