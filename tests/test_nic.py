"""NIC filter and transmit-queue tests."""

import pytest

from repro.simnet.calibration import FAST_ETHERNET_HUB, quiet
from repro.simnet.frame import BROADCAST, Frame, mcast_mac
from repro.simnet.kernel import Simulator
from repro.simnet.medium import SharedMedium
from repro.simnet.nic import Nic
from repro.simnet.stats import NetStats

import random

PARAMS = quiet(FAST_ETHERNET_HUB)


def make_pair():
    sim = Simulator()
    stats = NetStats()
    medium = SharedMedium(sim, PARAMS, rng=random.Random(0), stats=stats)
    a = Nic(sim, PARAMS, mac=0, stats=stats)
    b = Nic(sim, PARAMS, mac=1, stats=stats)
    a.attach_medium(medium)
    b.attach_medium(medium)
    return sim, a, b, stats


def test_unicast_filter_accepts_own_mac_only():
    sim, a, b, _ = make_pair()
    got = []
    b.set_receiver(lambda f: got.append(f.payload))
    a.send(Frame(src=0, dst=1, size=50, payload="mine"))
    a.send(Frame(src=0, dst=42, size=50, payload="not-mine"))
    sim.run()
    assert got == ["mine"]
    assert b.filtered_frames == 1


def test_broadcast_always_accepted():
    sim, a, b, _ = make_pair()
    got = []
    b.set_receiver(lambda f: got.append(f.payload))
    a.send(Frame(src=0, dst=BROADCAST, size=50, payload="bc"))
    sim.run()
    assert got == ["bc"]


def test_multicast_requires_filter_join():
    sim, a, b, _ = make_pair()
    grp = mcast_mac(3)
    got = []
    b.set_receiver(lambda f: got.append(f.payload))
    a.send(Frame(src=0, dst=grp, size=50, payload="lost"))
    sim.run()
    assert got == []          # not joined: silently dropped at the NIC
    b.join_filter(grp)
    a.send(Frame(src=0, dst=grp, size=50, payload="heard"))
    sim.run()
    assert got == ["heard"]


def test_multicast_filter_refcounting():
    sim, a, b, _ = make_pair()
    grp = mcast_mac(4)
    b.join_filter(grp)
    b.join_filter(grp)
    b.leave_filter(grp)
    assert b.in_filter(grp)       # one reference remains
    b.leave_filter(grp)
    assert not b.in_filter(grp)


def test_tx_queue_preserves_order():
    sim, a, b, _ = make_pair()
    got = []
    b.set_receiver(lambda f: got.append(f.payload))
    for i in range(5):
        a.send(Frame(src=0, dst=1, size=100, payload=i))
    sim.run()
    assert got == [0, 1, 2, 3, 4]
    assert a.tx_frames == 5


def test_send_event_fires_in_order():
    sim, a, b, _ = make_pair()
    completions = []

    def waiter(ev, tag):
        yield ev
        completions.append(tag)

    for i in range(3):
        ev = a.send(Frame(src=0, dst=1, size=100, payload=i))
        sim.process(waiter(ev, i))
    sim.run()
    assert completions == [0, 1, 2]


def test_unattached_nic_rejects_send():
    sim = Simulator()
    nic = Nic(sim, PARAMS, mac=9)
    with pytest.raises(RuntimeError, match="not attached"):
        nic.send(Frame(src=9, dst=0, size=10, payload=None))


def test_rx_counters():
    sim, a, b, stats = make_pair()
    b.set_receiver(lambda f: None)
    a.send(Frame(src=0, dst=1, size=50, payload=None))
    sim.run()
    assert b.rx_frames == 1
    assert stats.frames_delivered == 1
