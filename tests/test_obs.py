"""Flight recorder (:mod:`repro.obs`): byte-identical traces across
reruns and worker counts, exact per-collective frame attribution
against NetStats, per-call metrics on the communicator, FramePool
counters in snapshots, and hang diagnostics on the deadline/deadlock
paths."""

import json
import multiprocessing
import os
import zlib
from dataclasses import replace

import pytest

from repro import obs
from repro.bench.sweep import (AreaSpec, Family, dumps_canonical,
                               register_area, run_area)
from repro.runtime import run_spmd
from repro.simnet import DeadlockError
from repro.simnet.calibration import FAST_ETHERNET_SWITCH, quiet

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

QUIET = quiet(FAST_ETHERNET_SWITCH)
#: seeded per-receiver loss — repairs happen, deterministically
LOSSY = replace(QUIET, loss=0.05, label="lossy-test")
DEEP = "tree:2x2x2"
HIER = {"bcast": "hier-mcast", "gather": "hier-mcast",
        "barrier": "hier-mcast"}


def _program(env):
    obj = bytes(6000) if env.rank == 0 else None
    obj = yield from env.comm.bcast(obj, root=0)
    vals = yield from env.comm.gather(env.rank, root=0)
    yield from env.comm.barrier()
    return (len(obj), vals if env.rank == 0 else None)


def _traced_run(seed=3, params=LOSSY, **kwargs):
    saved = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = "1"
    obs.drain_recorders()
    try:
        result = run_spmd(8, _program, topology=DEEP, seed=seed,
                          params=params, collectives=HIER, **kwargs)
    finally:
        if saved is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved
    recs = obs.drain_recorders()
    assert len(recs) == 1
    return result, recs[0]


def _first_raw_frame_id(rec):
    for ev in rec.events:
        for key, value in ev[-1]:
            if key == "frame":
                return value
    return None


# ------------------------------------------------------- determinism
def test_trace_bytes_identical_across_reruns():
    """Two traced reruns of the same seeded lossy case export the same
    bytes even though the process-global frame counter advanced between
    them (the exporter rebases frame ids to first-seen order)."""
    _, rec_a = _traced_run(seed=3)
    _, rec_b = _traced_run(seed=3)
    assert _first_raw_frame_id(rec_a) != _first_raw_frame_id(rec_b)
    assert obs.perfetto_json([rec_a]) == obs.perfetto_json([rec_b])
    assert obs.text_report([rec_a]) == obs.text_report([rec_b])


def obs_digest_runner(scale, seed, op):
    """Synthetic sweep runner: digest of the exported trace bytes (an
    exact integer metric, so any cross-worker nondeterminism fails the
    doc comparison below byte-for-byte)."""
    saved = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = "1"
    obs.drain_recorders()
    try:
        run_spmd(8, _program, topology=DEEP, seed=seed, params=LOSSY,
                 collectives=HIER)
    finally:
        if saved is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved
    recs = obs.drain_recorders()
    payload = obs.perfetto_json(recs) + obs.text_report(recs)
    return {"trace_digest": zlib.crc32(payload.encode()),
            "events": sum(len(r.events) for r in recs)}


register_area(AreaSpec(
    name="obs-trace-test",
    title="synthetic area: traced-run digests for worker determinism",
    families=lambda scale: [
        Family("digest", {"op": ("a", "b")}, obs_digest_runner)],
))


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
def test_trace_identical_across_worker_counts():
    inline = run_area("obs-trace-test", workers=1)
    forked = run_area("obs-trace-test", workers=2)
    assert dumps_canonical(inline) == dumps_canonical(forked)


# ------------------------------------------- metrics and attribution
def test_frame_attribution_matches_netstats_exactly():
    """The acceptance criterion: per-collective frame counts summed
    with the outside bucket equal the NetStats deltas exactly — on the
    clean and the lossy deep-fabric case."""
    for params in (QUIET, LOSSY):
        _, rec = _traced_run(seed=7, params=params)
        totals = dict(rec.frame_totals())
        delta = {k: v for k, v in
                 rec.stats_delta()["frames_by_kind"].items() if v}
        assert totals == delta
        assert "exact" in obs.text_report([rec])
    assert any(c.repair_rounds > 0 for c in rec.calls), \
        "lossy run produced no repair rounds"


def test_metrics_log_on_communicator():
    def main(env):
        obj = yield from env.comm.bcast(
            bytes(5000) if env.rank == 0 else None, root=0)
        assert len(obj) == 5000
        yield from env.comm.barrier()
        return [dict(r) for r in env.comm.metrics_log]

    saved = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = "1"
    obs.drain_recorders()
    try:
        result = run_spmd(4, main, topology="switch", params=LOSSY,
                          seed=11, collectives={"bcast": "mcast-seg-nack",
                                                "barrier": "mcast"})
    finally:
        if saved is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved
    obs.drain_recorders()
    for rank, log in enumerate(result.returns):
        # _setup's barrier dispatches too, so: at least bcast + barrier
        assert len(log) >= 2
        ops = [(r["op"], r["impl"]) for r in log]
        assert ("bcast", "mcast-seg-nack") in ops
        bcast = next(r for r in log if r["op"] == "bcast")
        assert bcast["rank"] == rank
        assert bcast["elapsed_us"] > 0
        if rank == 0:
            assert bcast["frames_by_kind"].get("mcast-seg", 0) > 0


def test_metrics_log_empty_with_tracing_off():
    def main(env):
        yield from env.comm.barrier()
        return len(env.comm.metrics_log)

    assert os.environ.get(obs.TRACE_ENV) in (None, "", "0")
    result = run_spmd(2, main, topology="switch", params=QUIET, seed=1)
    assert result.returns == [0, 0]


def test_pool_counters_in_snapshot():
    result = run_spmd(8, _program, topology=DEEP, params=QUIET, seed=2,
                      collectives=HIER)
    assert result.stats["pool_frames_allocated"] > 0
    assert result.stats["pool_frames_reused"] >= 0
    total = (result.stats["pool_frames_allocated"]
             + result.stats["pool_frames_reused"])
    assert total >= result.stats["frames_sent"] > 0


# ----------------------------------------------------------- exports
def test_perfetto_doc_shape_and_frame_id_rebase():
    _, rec = _traced_run(seed=3, params=QUIET)
    doc = obs.perfetto_doc([rec])
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    insts = [e for e in events if e["ph"] == "i"]
    names = [e for e in events if e["ph"] == "M"]
    assert spans and insts and names
    assert {e["args"]["name"] for e in names} >= \
        {"run0:net"} | {f"run0:rank{r}" for r in range(8)}
    assert all(e["dur"] >= 0 for e in spans)
    assert any(e["cat"] == "collective" for e in spans)
    assert any(e["cat"] == "phase" for e in spans)
    assert any(e["cat"] == "round" for e in spans)
    fids = [e["args"]["frame"] for e in insts if "frame" in e["args"]]
    assert fids and min(fids) == 1 and max(fids) == len(set(fids))
    json.loads(obs.perfetto_json([rec]))    # valid JSON bytes


def test_write_trace_files(tmp_path):
    _, rec = _traced_run(seed=3, params=QUIET)
    paths = obs.write_trace(tmp_path / "out", [rec])
    assert paths["trace"].exists() and paths["report"].exists()
    doc = json.loads(paths["trace"].read_text())
    assert doc["traceEvents"]
    assert "frame attribution vs NetStats: exact" in \
        paths["report"].read_text()


# -------------------------------------------------- hang diagnostics
def test_deadline_hang_dump_names_open_round_and_missing():
    """A receiver that drops every multicast data copy leaves its
    follow round open forever; cutting the run at the deadline must
    dump that round with the full missing-segment set."""
    stubborn = replace(QUIET, max_retransmits=10**6)

    def main(env):
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = \
                lambda dgram: dgram.kind == "mcast-seg"
        obj = yield from env.comm.bcast(
            bytes(6000) if env.rank == 0 else None, root=0)
        return len(obj)

    saved = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = "1"
    obs.drain_recorders()
    try:
        run_spmd(2, main, topology="switch", params=stubborn, seed=5,
                 collectives={"bcast": "mcast-seg-nack"},
                 max_sim_us=150_000.0)
    finally:
        if saved is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved
    rec = obs.drain_recorders()[0]
    opened = rec.open_rounds()
    follow = [(rank, label, missing) for rank, _a, label, missing
              in opened if label.startswith("follow:")]
    assert follow, opened
    rank, label, missing = follow[0]
    assert rank == 1 and missing == [0, 1, 2, 3, 4]
    report = rec.hang_report
    assert report is not None and "deadline" in report
    assert f"rank1 {label}: missing={missing}" in report
    assert "-- live processes --" in report
    assert "-- posted receive descriptors --" in report
    assert "rank1" in report and "of" in report      # event tail shown


def test_deadlock_hang_dump():
    def main(env):
        if env.rank == 0:
            yield from env.comm._recv_coll(1, 77)    # never sent
        return env.rank

    saved = os.environ.get(obs.TRACE_ENV)
    os.environ[obs.TRACE_ENV] = "1"
    obs.drain_recorders()
    try:
        with pytest.raises(DeadlockError):
            run_spmd(2, main, topology="switch", params=QUIET, seed=1)
    finally:
        if saved is None:
            os.environ.pop(obs.TRACE_ENV, None)
        else:
            os.environ[obs.TRACE_ENV] = saved
    rec = obs.drain_recorders()[0]
    assert rec.hang_report is not None
    assert "deadlock" in rec.hang_report
    assert "rank0" in rec.hang_report


def test_tracing_off_leaves_no_recorder():
    assert os.environ.get(obs.TRACE_ENV) in (None, "", "0")
    result = run_spmd(8, _program, topology=DEEP, seed=1, params=QUIET,
                      collectives=HIER)
    assert result.cluster.stats.recorder is None
    assert obs.drain_recorders() == []
