"""Broadcast ordering and safety (paper §4)."""

import pytest

from repro.core.ordering import (UnsafeScheduleError, check_safe_schedule,
                                 run_bcast_sequence)
from repro.runtime import UniformSkew, run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_safe_schedule_accepts_identical():
    check_safe_schedule({
        0: [("bcast", 0, 1), ("bcast", 0, 2)],
        1: [("bcast", 0, 1), ("bcast", 0, 2)],
    })


def test_safe_schedule_rejects_reorder():
    with pytest.raises(UnsafeScheduleError):
        check_safe_schedule({
            0: [("bcast", 0, 1), ("bcast", 0, 2)],
            1: [("bcast", 0, 2), ("bcast", 0, 1)],
        })


def test_safe_schedule_rejects_length_mismatch():
    with pytest.raises(UnsafeScheduleError):
        check_safe_schedule({0: [("barrier", 0)], 1: []})


def test_safe_schedule_empty_ok():
    check_safe_schedule({})
    check_safe_schedule({0: [], 1: []})


@pytest.mark.parametrize("impl", ["mcast-binary", "mcast-linear",
                                  "p2p-binomial", "mcast-sequencer"])
def test_paper_section4_scenario_order_preserved(impl):
    """The paper's example: successive broadcasts rooted at three
    different group members arrive in program order at every rank."""
    roots = [1, 2, 3]     # the paper's processes 6, 7, 8 (as ranks)

    def main(env):
        out = yield from run_bcast_sequence(env, roots)
        return out

    result = run_spmd(4, main, params=QUIET,
                      collectives={"bcast": impl})
    expected = [(root, i) for i, root in enumerate(roots)]
    assert all(r == expected for r in result.returns)


@pytest.mark.parametrize("impl", ["mcast-binary", "mcast-linear"])
def test_order_preserved_under_heavy_skew(impl):
    """Even with wildly skewed starts, scout sync forces program order."""
    roots = [0, 3, 1, 4, 2, 0, 4]

    def main(env):
        out = yield from run_bcast_sequence(env, roots)
        return out

    result = run_spmd(5, main, seed=11,
                      skew=UniformSkew(3000.0, seed=5),
                      collectives={"bcast": impl})
    expected = [(root, i) for i, root in enumerate(roots)]
    assert all(r == expected for r in result.returns)


def test_two_groups_interleaved_safely():
    """Two communicators (two multicast groups): per-group order holds
    when every rank issues the calls in the same order (safe code)."""

    def main(env):
        sub = yield from env.comm.dup()
        sub.use_collectives(bcast="mcast-binary")
        env.comm.use_collectives(bcast="mcast-binary")
        a = yield from env.comm.bcast(
            "world-1" if env.rank == 0 else None, root=0)
        b = yield from sub.bcast(
            "dup-1" if env.rank == 1 else None, root=1)
        c = yield from env.comm.bcast(
            "world-2" if env.rank == 2 else None, root=2)
        return (a, b, c)

    result = run_spmd(4, main, params=QUIET)
    assert all(r == ("world-1", "dup-1", "world-2") for r in result.returns)
