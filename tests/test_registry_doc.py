"""The generated collective reference can never go stale: this tier-1
test regenerates ``docs/collectives.md`` in memory and diffs it against
the committed file (CI runs the same check via ``make docs-check``)."""

import pathlib

from repro.bench.registry_doc import (collective_registry_doc,
                                      default_doc_path)

REPO = pathlib.Path(__file__).parent.parent


def test_default_doc_path_points_into_this_repo():
    assert default_doc_path() == REPO / "docs" / "collectives.md"


def test_collectives_doc_is_current():
    committed = default_doc_path().read_text()
    assert committed == collective_registry_doc(), (
        "docs/collectives.md is stale — regenerate with "
        "'python -m repro.bench.cli registry-doc'")


def test_doc_covers_every_registered_op_and_impl():
    from repro.mpi.collective.registry import REGISTRY

    doc = collective_registry_doc()
    for op, impls in REGISTRY.items():
        assert f"## {op}" in doc
        for name in impls:
            assert f"`{name}`" in doc


def test_cli_check_mode_detects_staleness(tmp_path, capsys):
    from repro.bench.cli import main

    target = tmp_path / "collectives.md"
    assert main(["registry-doc", "--output", str(target)]) == 0
    assert main(["registry-doc", "--check", "--output",
                 str(target)]) == 0
    target.write_text(target.read_text() + "\nstale edit\n")
    assert main(["registry-doc", "--check", "--output",
                 str(target)]) == 1
