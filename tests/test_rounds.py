"""The reusable round engine: serve/follow contract, needed-subset and
bystander followers, adaptive drain timeouts, repair re-batching, and
the pacer unit behaviour."""

from dataclasses import replace

import pytest

from repro import run_spmd
from repro.core.rounds import (Reassembler, RoundPacer, follow_rounds,
                               repair_batch, round_drain_timeout_us,
                               round_namespace, serve_rounds)
from repro.core.segment import (fragment, seg_nack_datagram_count)
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = replace(QUIET, segment_bytes="auto")


# ------------------------------------------------------------ namespace
def test_round_namespace_shapes():
    arm, tok = round_namespace()
    assert arm(0) == ("seg-arm", 0) and tok(3) == 3
    arm, tok = round_namespace("ag", 2)
    assert arm(1) == ("seg-arm", "ag", 2, 1)
    assert tok(1) == ("ag", 2, 1)
    # distinct keys never collide
    assert round_namespace("a")[0](0) != round_namespace("b")[0](0)


# ------------------------------------------------- adaptive drain timeout
def test_drain_timeout_is_capped_by_configured_timeout():
    # a 33-datagram round exceeds the cap: behave exactly like PR 2
    assert (round_drain_timeout_us(QUIET, 33, 1472)
            == QUIET.seg_drain_timeout_us)


def test_drain_timeout_shrinks_for_short_rounds():
    one = round_drain_timeout_us(QUIET, 1, 1472)
    assert QUIET.seg_drain_floor_us < one < QUIET.seg_drain_timeout_us
    # the 12 kB auto case: one batched ~12 kB datagram, still below cap
    batched = round_drain_timeout_us(AUTO, 1, 12_044)
    assert batched < AUTO.seg_drain_timeout_us
    # monotonic in round length
    assert one <= round_drain_timeout_us(QUIET, 2, 1472)


def test_drain_timeout_covers_the_pacing_gap():
    paced = replace(QUIET, seg_pace_gap_us=500.0)
    assert (round_drain_timeout_us(paced, 2, 1472)
            >= round_drain_timeout_us(QUIET, 2, 1472) + 2 * 500.0
            or round_drain_timeout_us(paced, 2, 1472)
            == paced.seg_drain_timeout_us)
    # "auto" gap resolves to the drain-estimate-derived gap
    auto_gap = replace(QUIET, seg_pace_gap_us="auto")
    assert (round_drain_timeout_us(auto_gap, 1, 1472)
            > round_drain_timeout_us(QUIET, 1, 1472))


def test_whole_round_loss_nacks_faster_than_fixed_timeout():
    """The PR 2 follow-up: losing the *whole* round (one batched auto
    datagram) used to pay the full fixed drain timeout before NACKing;
    the adaptive timeout cuts the stall, so the same lossy broadcast
    finishes measurably earlier."""
    def drop_first_round():
        seen = set()

        def flt(dgram):
            if dgram.kind != "mcast-seg":
                return False
            seq = dgram.payload[1]
            if seq in seen:
                return False
            seen.add(seq)
            return True

        return flt

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = drop_first_round()
        obj = bytes(12_000) if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return len(out)

    adaptive = run_spmd(3, main, params=AUTO)
    # forcing the floor to the cap reproduces the fixed-timeout behaviour
    fixed = run_spmd(3, main, params=replace(
        AUTO, seg_drain_floor_us=AUTO.seg_drain_timeout_us))
    assert adaptive.returns == fixed.returns == [12_000] * 3
    assert adaptive.stats["retransmissions"] >= 1
    assert adaptive.sim_time_us < fixed.sim_time_us - 500.0


# ------------------------------------------------------ repair re-batching
def test_repair_batch_policy():
    # fully-auto params: small repair plans pack into one datagram
    assert repair_batch(AUTO, 3, 1) == 3
    assert repair_batch(AUTO, AUTO.seg_auto_crossover, 1) == 10
    # above the crossover: keep round 0's granularity
    assert repair_batch(AUTO, 11, 1) == 1
    # explicit settings pin the wire behaviour
    assert repair_batch(QUIET, 3, 1) == 1
    assert repair_batch(replace(AUTO, seg_batch=4), 3, 4) == 4


def test_scattered_losses_repack_into_one_repair_datagram():
    """48 kB auto (batch 1) with three scattered losses at one rank:
    the repair round re-batches [3, 11, 19] into a single datagram —
    one retransmission event, one descriptor, three frames."""
    lost = {3, 11, 19}

    def drop_once():
        dropped = set()

        def flt(dgram):
            if dgram.kind != "mcast-seg":
                return False
            seg = dgram.payload[2]
            segs = seg if isinstance(seg, tuple) else (seg,)
            if len(segs) == 1 and segs[0].index in lost - dropped:
                dropped.add(segs[0].index)
                return True
            return False

        return flt

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = drop_once()
        obj = bytes(48_000) if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == bytes(48_000)

    result = run_spmd(3, main, params=AUTO)
    assert result.returns == [True] * 3
    # ONE batched repair send carried all three lost segments...
    assert result.stats["retransmissions"] == 1
    # ...but still three single-frame segments on the wire
    assert result.stats["frames_by_kind"]["mcast-seg"] == 33 + 3
    wireup = result.stats["frames_by_kind"].get("p2p", 0)
    assert (result.stats["datagrams_sent"] - wireup
            == seg_nack_datagram_count(3, 33, batch=1, repairs=[3],
                                       repair_batches=[3]))


def test_seg_nack_datagram_count_repair_batches():
    base = seg_nack_datagram_count(4, 33, batch=1, repairs=[5])
    packed = seg_nack_datagram_count(4, 33, batch=1, repairs=[5],
                                     repair_batches=[5])
    assert base - packed == 4          # 5 repair datagrams became 1
    with pytest.raises(ValueError):
        seg_nack_datagram_count(4, 33, repairs=[5], repair_batches=[5, 1])


# ------------------------------------------------- Reassembler subsets
def test_reassembler_needed_subset():
    segs = fragment(bytes(range(250)) * 2, 100)      # 5 segments
    r = Reassembler(5, needed={1, 2})
    assert r.missing() == {1, 2} and not r.complete
    assert not r.add(segs[0])                        # not needed: ignored
    assert r.add(segs[1]) and r.add(segs[2])
    assert r.complete and r.missing() == set()
    assert [s.index for s in r.segments()] == [1, 2]
    assert b"".join(s.chunk for s in r.segments()) == (bytes(segs[1].chunk)
                                                       + bytes(segs[2].chunk))
    with pytest.raises(ValueError):
        r.result()                                   # not the whole stream


def test_reassembler_bystander_and_validation():
    r = Reassembler(3, needed=set())
    assert r.complete and r.missing() == set() and r.segments() == []
    with pytest.raises(ValueError):
        Reassembler(3, needed={5})
    with pytest.raises(ValueError):
        Reassembler(0)


# ------------------------------------------------------ serve/follow raw
def test_serve_follow_contract_with_subsets_and_bystander():
    """The raw engine API: rank 0 serves a 10-segment stream; rank 1
    follows it all, rank 2 follows only indices 0-4, rank 3 is a pure
    bystander — and a loss at rank 1 is repaired without disturbing the
    others."""
    payload = bytes(range(256)) * 20                 # 5120 B
    nsegs, batch = 10, 2

    def drop_seg7_once():
        state = {"done": False}

        def flt(dgram):
            if dgram.kind != "mcast-seg" or state["done"]:
                return False
            seg = dgram.payload[2]
            segs = seg if isinstance(seg, tuple) else (seg,)
            if any(s.index == 7 for s in segs):
                state["done"] = True
                return True
            return False

        return flt

    def main(env):
        comm = env.comm
        channel = comm.mcast
        seq = channel.next_seq()
        arm, tok = round_namespace("raw", 0)
        if env.rank == 0:
            segs = fragment(payload, 512)
            assert len(segs) == nsegs
            yield from serve_rounds(comm, channel, seq, 0, segs, batch,
                                    {1, 2, 3}, arm, tok)
            return "served"
        if env.rank == 1:
            channel.data_sock.drop_filter = drop_seg7_once()
            reasm = yield from follow_rounds(comm, channel, seq, 0,
                                             nsegs, batch, arm, tok)
            return reasm.result()
        if env.rank == 2:
            reasm = yield from follow_rounds(comm, channel, seq, 0,
                                             nsegs, batch, arm, tok,
                                             needed=set(range(5)))
            return b"".join(s.chunk for s in reasm.segments())
        reasm = yield from follow_rounds(comm, channel, seq, 0, nsegs,
                                         batch, arm, tok, needed=set())
        return ("bystander", reasm.segments(),
                channel.data_sock.posted_high_water)

    result = run_spmd(4, main, params=QUIET)
    assert result.returns[0] == "served"
    assert result.returns[1] == payload
    assert result.returns[2] == payload[:2560]
    kind, segs, high_water = result.returns[3]
    assert kind == "bystander" and segs == []
    assert high_water == 0                 # never posted a descriptor
    # the batch holding segment 7 (one datagram of 2 segments) was the
    # only repair
    assert result.stats["retransmissions"] == 1


def test_serve_follow_sequential_namespaces_do_not_cross_match():
    """Two back-to-back engine streams on one channel, distinct
    namespaces: control traffic of the first can never satisfy the
    second."""
    def main(env):
        comm = env.comm
        channel = comm.mcast
        out = []
        for k, payload in enumerate((b"a" * 1500, b"b" * 3000)):
            seq = channel.next_seq()
            arm, tok = round_namespace("multi", k)
            if env.rank == 0:
                segs = fragment(payload, 512)
                yield from serve_rounds(comm, channel, seq, 0, segs, 1,
                                        {1, 2}, arm, tok)
                out.append(payload)
            else:
                nsegs = len(fragment(payload, 512))
                reasm = yield from follow_rounds(comm, channel, seq, 0,
                                                 nsegs, 1, arm, tok)
                out.append(reasm.result())
        return [o == e for o, e in zip(out, (b"a" * 1500, b"b" * 3000))]

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [[True, True]] * 3


# ------------------------------------------------------------- the pacer
def test_round_pacer_unit():
    pacer = RoundPacer(QUIET, 1472)
    assert pacer.gap_us == 0.0                      # unpaced by default
    assert pacer.delay_before(5) == 0.0
    pacer.note_budgets([None, 3, 7])                # feedback: ring of 3
    assert pacer.burst == 3 and pacer.gap_us > 0
    assert pacer.delay_before(2) == 0.0             # within the burst
    assert pacer.delay_before(3) == pacer.gap_us
    pacer.note_budgets([2])
    assert pacer.burst == 2                         # shrinks, never grows
    pacer.note_budgets([9])
    assert pacer.burst == 2

    auto = RoundPacer(replace(QUIET, seg_pace_gap_us="auto"), 1472)
    drain = QUIET.seg_drain_estimate_us(1472)
    assert auto.gap_us == pytest.approx(1.25 * drain + 10.0)
    assert auto.delay_before(1) == auto.gap_us      # burst defaults to 1

    no_fb = RoundPacer(replace(QUIET, seg_pace_feedback=False), 1472)
    no_fb.note_budgets([2])
    assert no_fb.burst == 2 and no_fb.gap_us == 0.0  # learns, won't pace
