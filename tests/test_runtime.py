"""SPMD runtime: launcher, skew models, records."""

import pytest

from repro.runtime import (FixedSkew, NoSkew, RunResult, UniformSkew,
                           run_spmd)
from repro.runtime.skew import compute_phase
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_run_spmd_returns_per_rank_values():
    def main(env):
        yield env.sim.timeout(1.0)
        return env.rank * 2

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [0, 2, 4, 6]
    assert isinstance(result, RunResult)


def test_run_spmd_rejects_zero_ranks():
    with pytest.raises(ValueError):
        run_spmd(0, lambda env: iter(()))


def test_env_identity_fields():
    def main(env):
        yield env.sim.timeout(0.0)
        return (env.rank, env.size, env.comm.Get_rank(),
                env.comm.Get_size(), env.host.addr)

    result = run_spmd(3, main, params=QUIET)
    for r, got in enumerate(result.returns):
        assert got == (r, 3, r, 3, r)


def test_records_and_log():
    def main(env):
        env.log("samples", env.rank)
        env.log("samples", env.rank * 10)
        yield env.sim.timeout(0.0)

    result = run_spmd(2, main, params=QUIET)
    assert result.record_series("samples") == [[0, 0], [1, 10]]
    assert result.record_series("missing") == [[], []]


def test_init_done_after_skewed_start():
    skew = FixedSkew([0.0, 2000.0, 500.0])

    def main(env):
        yield env.sim.timeout(0.0)
        return env.now

    result = run_spmd(3, main, params=QUIET, skew=skew)
    assert result.init_done_us >= 2000.0
    # All ranks exit init together (the setup barrier): same time ±0.
    assert max(result.returns) - min(result.returns) < 500.0


def test_no_skew_is_zero():
    assert NoSkew().delay(5) == 0.0


def test_uniform_skew_reproducible_and_bounded():
    a = UniformSkew(1000.0, seed=3)
    b = UniformSkew(1000.0, seed=3)
    for rank in range(10):
        d = a.delay(rank)
        assert 0.0 <= d < 1000.0
        assert d == b.delay(rank)
    assert len({a.delay(r) for r in range(10)}) > 5


def test_uniform_skew_rejects_negative():
    with pytest.raises(ValueError):
        UniformSkew(-1.0)


def test_fixed_skew_out_of_range_is_zero():
    s = FixedSkew([10.0])
    assert s.delay(0) == 10.0
    assert s.delay(5) == 0.0


def test_fixed_skew_rejects_negative():
    with pytest.raises(ValueError):
        FixedSkew([-5.0])


def test_compute_phase_advances_clock_reproducibly():
    def main(env):
        t0 = env.now
        yield from compute_phase(env, 200.0, jitter_frac=0.25)
        return env.now - t0

    r1 = run_spmd(2, main, params=QUIET, seed=9)
    r2 = run_spmd(2, main, params=QUIET, seed=9)
    assert r1.returns == r2.returns
    for d in r1.returns:
        assert 150.0 <= d <= 250.0


def test_seed_changes_outcome_with_jitter():
    def main(env):
        yield from env.comm.barrier()
        return env.now

    r1 = run_spmd(4, main, seed=1)   # default params have jitter
    r2 = run_spmd(4, main, seed=2)
    assert r1.returns != r2.returns


def test_same_seed_is_fully_deterministic():
    def main(env):
        obj = "d" if env.rank == 0 else None
        obj = yield from env.comm.bcast(obj, root=0)
        yield from env.comm.barrier()
        return env.now

    r1 = run_spmd(5, main, topology="hub", seed=42,
                  collectives={"bcast": "mcast-binary"})
    r2 = run_spmd(5, main, topology="hub", seed=42,
                  collectives={"bcast": "mcast-binary"})
    assert r1.returns == r2.returns
    assert r1.stats == r2.stats


def test_max_sim_us_suppresses_deadlock_error():
    """A bounded run returns quietly even with ranks blocked forever
    (the unbounded run raises DeadlockError instead)."""
    from repro.simnet import DeadlockError

    def main(env):
        yield env.sim.event()    # block forever

    result = run_spmd(2, main, params=QUIET, max_sim_us=5000.0)
    assert result.sim_time_us <= 5000.0
    assert result.returns == [None, None]
    with pytest.raises(DeadlockError):
        run_spmd(2, main, params=QUIET)


def test_max_sim_us_caps_clock_with_pending_events():
    def main(env):
        yield env.sim.timeout(1e9)   # event far beyond the bound

    result = run_spmd(2, main, params=QUIET, max_sim_us=5000.0)
    assert result.sim_time_us == 5000.0


def test_collectives_kwarg_validated():
    with pytest.raises(KeyError):
        run_spmd(2, lambda env: iter(()), params=QUIET,
                 collectives={"bcast": "no-such-impl"})
