"""Dynamic §4-safety tracking: call logs and post-hoc verification."""

import pytest

from repro.core.ordering import UnsafeScheduleError
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


def test_call_log_records_ops_and_roots():
    def main(env):
        obj = "x" if env.rank == 0 else None
        yield from env.comm.bcast(obj, root=0)
        yield from env.comm.barrier()
        yield from env.comm.bcast(obj if env.rank == 2 else None, root=2)

    result = run_spmd(3, main, params=QUIET)
    log = result.call_logs[0]
    assert [entry[0] for entry in log] == ["bcast", "barrier", "bcast"]
    assert log[0][2] == (0,)        # root 0
    assert log[2][2] == (2,)        # root 2


def test_verify_safe_schedules_passes_for_safe_program():
    def main(env):
        yield from env.comm.barrier()
        total = yield from env.comm.allreduce(
            env.rank, __import__("repro.mpi", fromlist=["SUM"]).SUM)
        return total

    result = run_spmd(4, main, params=QUIET)
    result.verify_safe_schedules()      # must not raise
    # allreduce dispatches reduce+bcast internally: all logged identically
    assert all(log == result.call_logs[0] for log in result.call_logs)


def test_verify_safe_schedules_flags_divergence():
    """Divergent logs are flagged.  (A divergent program on one
    communicator would deadlock before returning, so the divergence is
    injected into the logs of a completed run.)"""

    def body(env):
        yield from env.comm.barrier()

    result = run_spmd(2, body, params=QUIET)
    result.call_logs[1] = [("bcast", 0, (0,))]   # rank 1 "did" a bcast
    with pytest.raises(UnsafeScheduleError):
        result.verify_safe_schedules()


def test_signature_excludes_payloads():
    """Different payloads per rank are NOT a safety violation."""

    def main(env):
        yield from env.comm.allgather(f"unique-{env.rank}" * (env.rank + 1))

    result = run_spmd(3, main, params=QUIET)
    result.verify_safe_schedules()


def test_ops_appear_in_signature():
    from repro.mpi import MAX, SUM

    def main(env):
        yield from env.comm.allreduce(1, SUM)
        yield from env.comm.allreduce(1, MAX)

    result = run_spmd(2, main, params=QUIET)
    log = result.call_logs[0]
    allreduce_entries = [e for e in log if e[0] == "allreduce"]
    assert allreduce_entries[0][2] == ("SUM",)
    assert allreduce_entries[1][2] == ("MAX",)
