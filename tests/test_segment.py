"""Segmented pipelined multicast: fragmentation, reassembly, the
adaptive transport plan (auto sizing + batching), and the
``mcast-seg-nack`` / ``mcast-seg-paced`` collectives (incl. NACK repair
under induced loss, root rate pacing against descriptor budgets, and
the documented frame/datagram-count formulas)."""

from dataclasses import replace

import numpy as np
import pytest

from repro import run_spmd
from repro.core.segment import (Reassembler, Segment, TransportPlan,
                                chunk_plan, fragment,
                                frame_segment_bytes, plan_segments,
                                plan_transport, reassemble,
                                seg_nack_datagram_count,
                                seg_nack_frame_count)
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = replace(QUIET, segment_bytes="auto")


def collective_datagrams(result) -> int:
    """Datagrams the collective itself sent: everything except the
    runtime's p2p wireup traffic (whose small datagrams are 1 frame
    each, so the kind counter equals the datagram count)."""
    return (result.stats["datagrams_sent"]
            - result.stats["frames_by_kind"].get("p2p", 0))


# ------------------------------------------------------------- planning
@pytest.mark.parametrize("nbytes,seg,expected", [
    (0, 100, [0]),                     # empty payload: one empty segment
    (1, 100, [1]),
    (100, 100, [100]),                 # exact fit
    (101, 100, [100, 1]),              # non-divisible remainder
    (250, 100, [100, 100, 50]),
    (300, 100, [100, 100, 100]),       # divisible
])
def test_plan_segments(nbytes, seg, expected):
    assert plan_segments(nbytes, seg) == expected
    assert sum(expected) == nbytes


def test_plan_segments_rejects_bad_args():
    with pytest.raises(ValueError):
        plan_segments(-1, 100)
    with pytest.raises(ValueError):
        plan_segments(100, 0)


# ------------------------------------------- adaptive transport plan
def test_frame_segment_bytes_fills_one_mtu():
    # 1460 user bytes + 12 envelope bytes = the 1472-byte UDP payload of
    # one default-MTU frame
    assert frame_segment_bytes(QUIET) == 1460


def test_plan_transport_explicit_size_keeps_single_segment_datagrams():
    tp = plan_transport(48_000, QUIET)
    assert tp == TransportPlan(segment_bytes=1460, batch=1, nsegs=33)
    assert tp.ndatagrams == 33


@pytest.mark.parametrize("nbytes,batch,nsegs", [
    (0, 1, 1),             # empty payload: one empty segment, one datagram
    (100, 1, 1),
    (1460, 1, 1),
    (5000, 4, 4),          # below crossover: whole round in one datagram
    (12_000, 9, 9),
    (14_600, 10, 10),      # exactly at the crossover: still one datagram
    (14_601, 1, 11),       # above: full selective-repair granularity
    (48_000, 1, 33),
])
def test_plan_transport_auto_crossover(nbytes, batch, nsegs):
    tp = plan_transport(nbytes, AUTO)
    assert (tp.segment_bytes, tp.batch, tp.nsegs) == (1460, batch, nsegs)
    if batch > 1:
        assert tp.ndatagrams == 1


def test_plan_transport_explicit_batch_overrides_policy():
    forced = replace(QUIET, seg_batch=4)
    tp = plan_transport(12_000, forced)
    assert (tp.batch, tp.nsegs, tp.ndatagrams) == (4, 9, 3)
    # batch is clamped to the segment count
    assert plan_transport(1000, forced).batch == 1
    with pytest.raises(ValueError):
        plan_transport(1000, replace(QUIET, seg_batch=0))


def test_chunk_plan_groups_consecutive_indices():
    assert chunk_plan([0, 1, 2, 3, 4], 2) == [[0, 1], [2, 3], [4]]
    assert chunk_plan([3, 7, 11], 8) == [[3, 7, 11]]   # repair re-batching
    assert chunk_plan([], 3) == []
    with pytest.raises(ValueError):
        chunk_plan([0], 0)


def test_seg_nack_datagram_count_formula():
    # batch 1 degenerates to the frame formula
    assert (seg_nack_datagram_count(4, 33)
            == seg_nack_frame_count(4, 33))
    # batching shrinks only the data terms
    assert (seg_nack_datagram_count(4, 33, batch=8, repairs=[5])
            == 1 + 3 * 7 + 5 + 1)
    assert seg_nack_datagram_count(1, 10, batch=2) == 0


# ------------------------------------------------- fragment / reassemble
@pytest.mark.parametrize("nbytes", [0, 1, 99, 100, 101, 1459, 1460,
                                    1461, 4999, 48_000])
def test_bytes_round_trip(nbytes):
    payload = bytes(range(256)) * (nbytes // 256 + 1)
    payload = payload[:nbytes]
    segs = fragment(payload, 1460)
    assert sum(s.nbytes for s in segs) == nbytes
    assert reassemble(segs) == payload
    # any order reassembles identically
    assert reassemble(list(reversed(segs))) == payload


def test_bytearray_and_memoryview_round_trip_as_bytes():
    payload = bytearray(b"ab" * 700)
    for obj in (payload, memoryview(payload)):
        assert reassemble(fragment(obj, 100)) == bytes(payload)


def test_opaque_object_round_trip():
    obj = {"k": list(range(500))}
    segs = fragment(obj, 64)
    assert len(segs) > 1
    assert all(s.opaque for s in segs)
    assert reassemble(segs) is obj


def test_numpy_payload_is_opaque_but_sized_exactly():
    arr = np.arange(1000, dtype=np.float64)
    segs = fragment(arr, 1460)
    assert sum(s.nbytes for s in segs) == arr.nbytes
    assert reassemble(segs) is arr


def test_reassemble_rejects_incomplete_sets():
    segs = fragment(bytes(500), 100)
    with pytest.raises(ValueError):
        reassemble(segs[:-1])
    with pytest.raises(ValueError):
        reassemble([])


def test_reassembler_tracks_missing_and_duplicates():
    segs = fragment(bytes(450), 100)         # 5 segments
    r = Reassembler(5)
    assert r.missing() == {0, 1, 2, 3, 4}
    assert r.add(segs[2])
    assert not r.add(segs[2])                # duplicate
    assert r.duplicates == 1
    assert r.missing() == {0, 1, 3, 4}
    assert not r.complete
    with pytest.raises(ValueError):
        r.result()
    for s in segs:
        r.add(s)
    assert r.complete and r.result() == bytes(450)
    with pytest.raises(ValueError):
        r.add(Segment(9, 7, 0, b""))         # foreign segment set


# ---------------------------------------------------------- loss filters
def drop_first_copy_of(indices):
    """Induced loss: drop the first arrival of the given segment indices
    (per broadcast sequence), second copies pass."""
    dropped = set()

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        _root, seq, seg = dgram.payload
        key = (seq, seg.index)
        if seg.index in indices and key not in dropped:
            dropped.add(key)
            return True
        return False

    return flt


# ----------------------------------------------------- seg-nack broadcast
@pytest.mark.parametrize("n", [1, 2, 4, 6, 9])
@pytest.mark.parametrize("nbytes", [0, 1000, 5000, 20_000])
def test_seg_nack_bcast_correct_lossless(n, nbytes):
    payload = bytes(nbytes)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [True] * n
    assert result.stats["retransmissions"] == 0


def test_seg_nack_bcast_nonzero_root_and_objects():
    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = {"data": bytes(4000)} if env.rank == 2 else None
        out = yield from env.comm.bcast(obj, 2)
        return out == {"data": bytes(4000)}

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [True] * 5


def test_seg_nack_repairs_induced_loss():
    """Receivers NACK missing segments; the root resends only those."""
    payload = bytes(20_000)                    # 14 segments at 1460 B
    lost = {2, 5, 11}

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank in (1, 3):
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of(lost)
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4
    # selective repair: exactly the union was re-multicast, once
    assert result.stats["retransmissions"] == len(lost)
    assert result.stats["frames_by_kind"]["mcast-seg"] == 14 + len(lost)


def test_seg_nack_repairs_lost_tail_via_drain_timeout():
    """Losing the last segment exercises the drain-timeout path (no
    higher-index arrival can end the round early)."""
    payload = bytes(20_000)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({13})
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 1


def test_seg_nack_survives_repeated_loss_rounds():
    """A segment whose first AND second copies are dropped needs two
    repair rounds."""
    payload = bytes(10_000)                    # 7 segments
    copies = {}

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        _root, seq, seg = dgram.payload
        if seg.index != 3:
            return False
        seen = copies.get((seq, seg.index), 0)
        copies[(seq, seg.index)] = seen + 1
        return seen < 2                        # drop first two copies

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = flt
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 2


def test_seg_nack_back_to_back_with_other_collectives():
    """Segmented broadcasts interleave cleanly with barriers and the
    classic scouted broadcast on the same channel."""
    payloads = [bytes(3000), bytes(17_001), bytes(1)]

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack", barrier="mcast")
        got = []
        for p in payloads:
            out = yield from env.comm.bcast(p if env.rank == 0 else None, 0)
            got.append(out == p)
            yield from env.comm.barrier()
        env.comm.use_collectives(bcast="mcast-binary")
        out = yield from env.comm.bcast("tail" if env.rank == 0 else None, 0)
        got.append(out == "tail")
        return all(got)

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4


def test_seg_nack_frame_count_formula():
    """Loss-free frame counts match the module's documented formula."""
    payload = bytes(48_000)                    # 33 segments at 1460 B
    n = 4

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return len(out)

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [48_000] * n
    kinds = result.stats["frames_by_kind"]
    observed = sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))
    assert observed == seg_nack_frame_count(n, 33)
    assert kinds["mcast-seg"] == 33
    assert kinds["mcast-seg-hdr"] == 1
    assert kinds["seg-report"] == n - 1
    assert kinds["seg-dec"] == n - 1


# -------------------------------------------------- seg-paced allgather
@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_seg_paced_allgather_correct(n):
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        mine = bytes([env.rank]) * (3000 + env.rank)
        out = yield from env.comm.allgather(mine)
        return [len(x) for x in out]

    result = run_spmd(n, main, params=QUIET)
    expected = [3000 + r for r in range(n)]
    assert result.returns == [expected] * n


def test_seg_paced_allgather_matches_paced():
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        a = yield from env.comm.allgather(bytes([env.rank]) * 4000)
        env.comm.use_collectives(allgather="mcast-seg-paced")
        b = yield from env.comm.allgather(bytes([env.rank]) * 4000)
        return a == b

    result = run_spmd(5, main, params=QUIET)
    assert all(result.returns)


def test_seg_paced_allgather_repairs_induced_loss():
    """A lost segment no longer raises McastLost: the turn's sender runs
    the same NACK repair rounds as the broadcast and re-multicasts only
    the missing segment."""
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        if env.rank == 2:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({1})
        out = yield from env.comm.allgather(bytes(5000))
        return [len(x) for x in out]

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [[5000] * 4] * 4
    # rank 2 missed segment 1 of turn 0's stream; exactly that one
    # segment was re-multicast (5000 B = 4 segments per turn)
    assert result.stats["retransmissions"] == 1
    assert result.stats["frames_by_kind"]["mcast-seg"] == 4 * 4 + 1


def test_seg_paced_allgather_repairs_loss_in_every_turn():
    """Each turn's sender repairs its own stream: a receiver dropping
    segment 2 of *every* sender forces one single-segment repair round
    per turn it listens to."""
    def drop_seg2_once_per_sender():
        dropped = set()

        def flt(dgram):
            if dgram.kind != "mcast-seg":
                return False
            root, _seq, seg = dgram.payload
            if seg.index == 2 and root not in dropped:
                dropped.add(root)
                return True
            return False

        return flt

    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = \
                drop_seg2_once_per_sender()
        mine = bytes([env.rank]) * 6000
        out = yield from env.comm.allgather(mine)
        return [x == bytes([r]) * 6000 for r, x in enumerate(out)]

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [[True] * 4] * 4
    # rank 1 listens to turns 0, 2, 3 -> three single-segment repairs
    assert result.stats["retransmissions"] == 3


def test_seg_paced_allgather_auto_batches_small_contributions():
    """Auto transport: each 5000-B contribution (4 segments) rides one
    batched datagram per turn, and the result still matches."""
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        out = yield from env.comm.allgather(bytes([env.rank]) * 5000)
        return [x == bytes([r]) * 5000 for r, x in enumerate(out)]

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [[True] * 4] * 4
    # 4 turns x 4 single-frame segments, batched: frame count unchanged
    assert result.stats["frames_by_kind"]["mcast-seg"] == 16
    # ...but each turn's stream was ONE datagram (the batching win);
    # subtract the per-turn header + control datagrams via the formula
    per_turn = seg_nack_datagram_count(4, 4, batch=4)
    ready = 2 * 3                      # ag-ready gather + ag-go release
    assert collective_datagrams(result) == ready + 4 * per_turn


# ------------------------------------------------------ batched frames
def test_seg_nack_batched_bcast_matches_formulas():
    """An explicit batch factor leaves the Ethernet-frame formula intact
    while cutting datagrams (the per-receive software tax) to
    ceil(S/B) — both closed forms hold on the wire."""
    forced = replace(QUIET, seg_batch=8)
    payload = bytes(48_000)                    # 33 segments, 5 datagrams

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(4, main, params=forced)
    assert result.returns == [True] * 4
    kinds = result.stats["frames_by_kind"]
    assert kinds["mcast-seg"] == 33            # one frame per segment still
    assert collective_datagrams(result) == seg_nack_datagram_count(
        4, 33, batch=8)


def test_seg_nack_batched_bcast_repairs_whole_batch_loss():
    """Losing one batched datagram loses its whole segment run; the
    repair round re-batches exactly those segments into one datagram."""
    forced = replace(QUIET, seg_batch=8)
    payload = bytes(48_000)
    dropped = []

    def flt(dgram):
        # drop the first copy of the second batch (segments 8..15)
        if dgram.kind != "mcast-seg" or dropped:
            return False
        batch = dgram.payload[2]
        if isinstance(batch, tuple) and batch[0].index == 8:
            dropped.append([s.index for s in batch])
            return True
        return False

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = flt
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(3, main, params=forced)
    assert result.returns == [True] * 3
    assert dropped == [list(range(8, 16))]
    # the 8 lost segments came back as ONE re-batched repair datagram
    assert result.stats["retransmissions"] == 1
    assert collective_datagrams(result) == seg_nack_datagram_count(
        3, 33, batch=8, repairs=[8])


def test_seg_nack_auto_bcast_correct_across_the_crossover():
    """Auto transport stays correct on both sides of the crossover and
    for opaque (non-bytes) payloads."""
    payloads = [bytes(0), bytes(1000), bytes(12_000), bytes(48_000),
                {"opaque": list(range(2000))}]

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        got = []
        for p in payloads:
            out = yield from env.comm.bcast(p if env.rank == 0 else None, 0)
            got.append(out == p)
        return got

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [[True] * len(payloads)] * 4


# ------------------------------------------------- crossover vs mcast-ack
def _lossy_bcast_frames(impl, nbytes, params, nprocs=4):
    """One broadcast under the bench's loss model (odd ranks drop the
    first copy of every data datagram); returns payload-frame count."""
    data_kind = "mcast-seg" if impl == "mcast-seg-nack" else "mcast-data"

    def drop_first_copy():
        seen = set()

        def flt(dgram):
            if dgram.kind != data_kind:
                return False
            seq = dgram.payload[1]
            if seq in seen:
                return False
            seen.add(seq)
            return True

        return flt

    def main(env):
        env.comm.use_collectives(bcast=impl)
        if env.rank % 2 == 1:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy()
        obj = bytes(nbytes) if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == bytes(nbytes)

    result = run_spmd(nprocs, main, params=params)
    assert all(result.returns)
    return result.stats["frames_by_kind"].get(data_kind, 0)


@pytest.mark.parametrize("nbytes", [0, 100, 1460, 5000, 10_000, 14_000])
def test_auto_seg_nack_never_beaten_by_ack_below_crossover(nbytes):
    """The PR 1 crossover is gone: below ~10 MTUs the auto plan ships
    the payload as one datagram, so ``mcast-seg-nack`` never puts more
    payload-carrying frames on the wire than ``mcast-ack`` under the
    same induced loss.  (Control frames are excluded: scouts, reports
    and decisions are 4-byte frames against 1500-byte data frames.)"""
    seg = _lossy_bcast_frames("mcast-seg-nack", nbytes, AUTO)
    ack = _lossy_bcast_frames("mcast-ack", nbytes, QUIET)
    assert seg <= ack


def test_auto_seg_nack_beats_ack_above_crossover():
    """Above the crossover, selective repair wins outright — and by a
    wide margin, because mcast-ack re-multicasts the whole payload."""
    seg = _lossy_bcast_frames("mcast-seg-nack", 48_000, AUTO)
    ack = _lossy_bcast_frames("mcast-ack", 48_000, QUIET)
    assert seg < ack / 2


# --------------------------------------------- rate pacing (paper §5)
SLOW_RECV = replace(QUIET, mcast_recv_extra_us=400.0)


def _budget_bcast(params, budget, nbytes=48_000, nprocs=3):
    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank != 0 and budget is not None:
            env.comm.mcast.recv_budget = budget
        obj = bytes(nbytes) if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return (out == bytes(nbytes),
                env.comm.mcast.data_sock.posted_high_water)

    return run_spmd(nprocs, main, params=params)


def test_unpaced_burst_overruns_finite_descriptor_budget():
    """A receiver with a 2-descriptor ring cannot absorb a back-to-back
    33-segment burst from a fast root: the overflow datagrams drop
    (paper §5 overrun) and must be NACK-repaired — correct result, but
    real retransmission cost."""
    result = _budget_bcast(SLOW_RECV, budget=2)
    assert all(ok for ok, _hw in result.returns)
    assert result.stats["drops_not_posted"] > 0
    assert result.stats["retransmissions"] > 0
    # the ring was honoured: receivers never held more than 2 descriptors
    assert all(hw <= 2 for ok, hw in result.returns[1:])


def test_auto_pacing_gap_prevents_overrun_entirely():
    """With the auto inter-datagram gap (derived from the receiver drain
    estimate) and the budget declared in NetParams, even a 2-descriptor
    ring absorbs the whole stream: zero drops, zero repairs."""
    paced = replace(SLOW_RECV, seg_pace_gap_us="auto", seg_recv_budget=2)
    result = _budget_bcast(paced, budget=None)
    assert all(ok for ok, _hw in result.returns)
    assert result.stats["drops_not_posted"] == 0
    assert result.stats["retransmissions"] == 0
    assert all(hw <= 2 for ok, hw in result.returns[1:])


def test_pacing_feedback_shrinks_the_burst_after_round_one():
    """The root does not know the receivers' rings up front; the NACK
    reports carry them, and with feedback the repair rounds run paced —
    far fewer retransmissions than with feedback disabled."""
    with_fb = _budget_bcast(SLOW_RECV, budget=2)
    no_fb = _budget_bcast(replace(SLOW_RECV, seg_pace_feedback=False),
                          budget=2)
    assert all(ok for ok, _hw in with_fb.returns)
    assert all(ok for ok, _hw in no_fb.returns)
    assert (with_fb.stats["retransmissions"]
            < no_fb.stats["retransmissions"])


def test_seg_paced_allgather_survives_budget_overrun():
    """The many-to-many case the paper's §5 worried about: every rank
    runs a finite ring, senders burst, overruns are repaired per turn —
    the allgather completes instead of raising McastLost."""
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        env.comm.mcast.recv_budget = 2
        out = yield from env.comm.allgather(bytes([env.rank]) * 20_000)
        return [x == bytes([r]) * 20_000 for r, x in enumerate(out)]

    result = run_spmd(3, main, params=SLOW_RECV)
    assert result.returns == [[True] * 3] * 3
    assert result.stats["drops_not_posted"] > 0
    assert result.stats["retransmissions"] > 0


def test_seg_nack_gives_up_cleanly_on_unrepairable_loss():
    """If a segment can never be delivered, the root aborts the repair
    loop AND tells the receivers, so every rank raises instead of the
    receivers hanging in an arm gather the root will never serve."""
    few = quiet(FAST_ETHERNET_SWITCH.__class__(**{
        **FAST_ETHERNET_SWITCH.__dict__, "max_retransmits": 3}))

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = (
                lambda d: d.kind == "mcast-seg" and d.payload[2].index == 2)
        out = yield from env.comm.bcast(
            bytes(10_000) if env.rank == 0 else None, 0)
        return len(out)

    with pytest.raises(RuntimeError, match="gave up|root gave up"):
        run_spmd(3, main, params=few)
