"""Segmented pipelined multicast: fragmentation, reassembly, and the
``mcast-seg-nack`` / ``mcast-seg-paced`` collectives (incl. NACK repair
under induced loss and the documented frame-count formula)."""

import numpy as np
import pytest

from repro import run_spmd
from repro.core.mcast_bcast import McastLost
from repro.core.segment import (Reassembler, Segment, fragment,
                                plan_segments, reassemble,
                                seg_nack_frame_count)
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)


# ------------------------------------------------------------- planning
@pytest.mark.parametrize("nbytes,seg,expected", [
    (0, 100, [0]),                     # empty payload: one empty segment
    (1, 100, [1]),
    (100, 100, [100]),                 # exact fit
    (101, 100, [100, 1]),              # non-divisible remainder
    (250, 100, [100, 100, 50]),
    (300, 100, [100, 100, 100]),       # divisible
])
def test_plan_segments(nbytes, seg, expected):
    assert plan_segments(nbytes, seg) == expected
    assert sum(expected) == nbytes


def test_plan_segments_rejects_bad_args():
    with pytest.raises(ValueError):
        plan_segments(-1, 100)
    with pytest.raises(ValueError):
        plan_segments(100, 0)


# ------------------------------------------------- fragment / reassemble
@pytest.mark.parametrize("nbytes", [0, 1, 99, 100, 101, 1459, 1460,
                                    1461, 4999, 48_000])
def test_bytes_round_trip(nbytes):
    payload = bytes(range(256)) * (nbytes // 256 + 1)
    payload = payload[:nbytes]
    segs = fragment(payload, 1460)
    assert sum(s.nbytes for s in segs) == nbytes
    assert reassemble(segs) == payload
    # any order reassembles identically
    assert reassemble(list(reversed(segs))) == payload


def test_bytearray_and_memoryview_round_trip_as_bytes():
    payload = bytearray(b"ab" * 700)
    for obj in (payload, memoryview(payload)):
        assert reassemble(fragment(obj, 100)) == bytes(payload)


def test_opaque_object_round_trip():
    obj = {"k": list(range(500))}
    segs = fragment(obj, 64)
    assert len(segs) > 1
    assert all(s.opaque for s in segs)
    assert reassemble(segs) is obj


def test_numpy_payload_is_opaque_but_sized_exactly():
    arr = np.arange(1000, dtype=np.float64)
    segs = fragment(arr, 1460)
    assert sum(s.nbytes for s in segs) == arr.nbytes
    assert reassemble(segs) is arr


def test_reassemble_rejects_incomplete_sets():
    segs = fragment(bytes(500), 100)
    with pytest.raises(ValueError):
        reassemble(segs[:-1])
    with pytest.raises(ValueError):
        reassemble([])


def test_reassembler_tracks_missing_and_duplicates():
    segs = fragment(bytes(450), 100)         # 5 segments
    r = Reassembler(5)
    assert r.missing() == {0, 1, 2, 3, 4}
    assert r.add(segs[2])
    assert not r.add(segs[2])                # duplicate
    assert r.duplicates == 1
    assert r.missing() == {0, 1, 3, 4}
    assert not r.complete
    with pytest.raises(ValueError):
        r.result()
    for s in segs:
        r.add(s)
    assert r.complete and r.result() == bytes(450)
    with pytest.raises(ValueError):
        r.add(Segment(9, 7, 0, b""))         # foreign segment set


# ---------------------------------------------------------- loss filters
def drop_first_copy_of(indices):
    """Induced loss: drop the first arrival of the given segment indices
    (per broadcast sequence), second copies pass."""
    dropped = set()

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        _root, seq, seg = dgram.payload
        key = (seq, seg.index)
        if seg.index in indices and key not in dropped:
            dropped.add(key)
            return True
        return False

    return flt


# ----------------------------------------------------- seg-nack broadcast
@pytest.mark.parametrize("n", [1, 2, 4, 6, 9])
@pytest.mark.parametrize("nbytes", [0, 1000, 5000, 20_000])
def test_seg_nack_bcast_correct_lossless(n, nbytes):
    payload = bytes(nbytes)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [True] * n
    assert result.stats["retransmissions"] == 0


def test_seg_nack_bcast_nonzero_root_and_objects():
    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = {"data": bytes(4000)} if env.rank == 2 else None
        out = yield from env.comm.bcast(obj, 2)
        return out == {"data": bytes(4000)}

    result = run_spmd(5, main, params=QUIET)
    assert result.returns == [True] * 5


def test_seg_nack_repairs_induced_loss():
    """Receivers NACK missing segments; the root resends only those."""
    payload = bytes(20_000)                    # 14 segments at 1460 B
    lost = {2, 5, 11}

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank in (1, 3):
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of(lost)
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4
    # selective repair: exactly the union was re-multicast, once
    assert result.stats["retransmissions"] == len(lost)
    assert result.stats["frames_by_kind"]["mcast-seg"] == 14 + len(lost)


def test_seg_nack_repairs_lost_tail_via_drain_timeout():
    """Losing the last segment exercises the drain-timeout path (no
    higher-index arrival can end the round early)."""
    payload = bytes(20_000)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({13})
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 1


def test_seg_nack_survives_repeated_loss_rounds():
    """A segment whose first AND second copies are dropped needs two
    repair rounds."""
    payload = bytes(10_000)                    # 7 segments
    copies = {}

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        _root, seq, seg = dgram.payload
        if seg.index != 3:
            return False
        seen = copies.get((seq, seg.index), 0)
        copies[(seq, seg.index)] = seen + 1
        return seen < 2                        # drop first two copies

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = flt
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [True] * 3
    assert result.stats["retransmissions"] == 2


def test_seg_nack_back_to_back_with_other_collectives():
    """Segmented broadcasts interleave cleanly with barriers and the
    classic scouted broadcast on the same channel."""
    payloads = [bytes(3000), bytes(17_001), bytes(1)]

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack", barrier="mcast")
        got = []
        for p in payloads:
            out = yield from env.comm.bcast(p if env.rank == 0 else None, 0)
            got.append(out == p)
            yield from env.comm.barrier()
        env.comm.use_collectives(bcast="mcast-binary")
        out = yield from env.comm.bcast("tail" if env.rank == 0 else None, 0)
        got.append(out == "tail")
        return all(got)

    result = run_spmd(4, main, params=QUIET)
    assert result.returns == [True] * 4


def test_seg_nack_frame_count_formula():
    """Loss-free frame counts match the module's documented formula."""
    payload = bytes(48_000)                    # 33 segments at 1460 B
    n = 4

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return len(out)

    result = run_spmd(n, main, params=QUIET)
    assert result.returns == [48_000] * n
    kinds = result.stats["frames_by_kind"]
    observed = sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))
    assert observed == seg_nack_frame_count(n, 33)
    assert kinds["mcast-seg"] == 33
    assert kinds["mcast-seg-hdr"] == 1
    assert kinds["seg-report"] == n - 1
    assert kinds["seg-dec"] == n - 1


# -------------------------------------------------- seg-paced allgather
@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_seg_paced_allgather_correct(n):
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        mine = bytes([env.rank]) * (3000 + env.rank)
        out = yield from env.comm.allgather(mine)
        return [len(x) for x in out]

    result = run_spmd(n, main, params=QUIET)
    expected = [3000 + r for r in range(n)]
    assert result.returns == [expected] * n


def test_seg_paced_allgather_matches_paced():
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        a = yield from env.comm.allgather(bytes([env.rank]) * 4000)
        env.comm.use_collectives(allgather="mcast-seg-paced")
        b = yield from env.comm.allgather(bytes([env.rank]) * 4000)
        return a == b

    result = run_spmd(5, main, params=QUIET)
    assert all(result.returns)


def test_seg_paced_allgather_loss_raises_mcastlost():
    """Without NACK repair, an induced loss surfaces as McastLost, never
    a hang."""
    def main(env):
        env.comm.use_collectives(allgather="mcast-seg-paced")
        if env.rank == 2:
            env.comm.mcast.data_sock.drop_filter = drop_first_copy_of({1})
        out = yield from env.comm.allgather(bytes(5000))
        return len(out)

    with pytest.raises(McastLost):
        run_spmd(4, main, params=QUIET)


def test_seg_nack_gives_up_cleanly_on_unrepairable_loss():
    """If a segment can never be delivered, the root aborts the repair
    loop AND tells the receivers, so every rank raises instead of the
    receivers hanging in an arm gather the root will never serve."""
    few = quiet(FAST_ETHERNET_SWITCH.__class__(**{
        **FAST_ETHERNET_SWITCH.__dict__, "max_retransmits": 3}))

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        if env.rank == 1:
            env.comm.mcast.data_sock.drop_filter = (
                lambda d: d.kind == "mcast-seg" and d.payload[2].index == 2)
        out = yield from env.comm.bcast(
            bytes(10_000) if env.rank == 0 else None, 0)
        return len(out)

    with pytest.raises(RuntimeError, match="gave up|root gave up"):
        run_spmd(3, main, params=few)
