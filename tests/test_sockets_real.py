"""Real-socket backend tests (skipped where loopback multicast is off)."""

import time

import pytest

from repro.sockets import (Kind, Message, multicast_available, pack,
                           run_threads, unpack)

pytestmark = pytest.mark.realnet

HAVE_MCAST = multicast_available()
needs_mcast = pytest.mark.skipif(
    not HAVE_MCAST, reason="UDP multicast on loopback unavailable")


# ---------------------------------------------------------------- framing
def test_framing_roundtrip():
    msg = Message(kind=Kind.P2P, ctx=3, src=2, tag=-17,
                  payload={"a": [1, 2, 3]})
    assert unpack(pack(msg)) == msg


def test_framing_rejects_garbage():
    with pytest.raises(ValueError):
        unpack(b"\x00\x01")
    with pytest.raises(ValueError):
        unpack(b"\xff" * 32)


def test_framing_rejects_oversize():
    msg = Message(kind=Kind.MDATA, ctx=0, src=0, tag=1,
                  payload=b"x" * 100_000)
    with pytest.raises(ValueError, match="too large"):
        pack(msg)


# ---------------------------------------------------------------- p2p
@needs_mcast
def test_real_send_recv():
    def body(comm):
        if comm.rank == 0:
            comm.send({"n": 41}, dest=1, tag=9)
            return comm.recv(source=1, tag=10)
        data = comm.recv(source=0, tag=9)
        comm.send(data["n"] + 1, dest=0, tag=10)
        return None

    results = run_threads(2, body)
    assert results[0] == 42


@needs_mcast
def test_real_tag_matching():
    def body(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        two = comm.recv(source=0, tag=2)
        one = comm.recv(source=0, tag=1)
        return (one, two)

    results = run_threads(2, body)
    assert results[1] == ("first", "second")


# ---------------------------------------------------------------- bcast
@pytest.mark.parametrize("impl", ["binary", "linear", "p2p", "ack"])
@needs_mcast
def test_real_bcast_impls(impl):
    def body(comm):
        obj = {"payload": list(range(200))} if comm.rank == 0 else None
        return comm.bcast(obj, root=0, impl=impl)

    n = 5
    results = run_threads(n, body)
    expected = {"payload": list(range(200))}
    assert results == [expected] * n


@pytest.mark.parametrize("impl", ["binary", "linear"])
@needs_mcast
def test_real_bcast_nonzero_root(impl):
    def body(comm):
        obj = f"from-{comm.rank}" if comm.rank == 2 else None
        return comm.bcast(obj, root=2, impl=impl)

    results = run_threads(4, body)
    assert results == ["from-2"] * 4


@needs_mcast
def test_real_bcast_large_payload_single_datagram():
    blob = bytes(range(256)) * 150       # 38.4 kB, one UDP datagram

    def body(comm):
        obj = blob if comm.rank == 0 else None
        data = comm.bcast(obj, root=0, impl="binary")
        return len(data)

    results = run_threads(3, body)
    assert results == [len(blob)] * 3


@needs_mcast
def test_real_bcast_sequence_order_preserved():
    """The paper's §4 scenario on real sockets: successive broadcasts
    from different roots arrive in program order everywhere."""
    roots = [1, 2, 3, 0, 2]

    def body(comm):
        out = []
        for i, root in enumerate(roots):
            obj = (root, i) if comm.rank == root else None
            out.append(comm.bcast(obj, root=root, impl="binary"))
        return out

    results = run_threads(4, body)
    expected = [(root, i) for i, root in enumerate(roots)]
    assert all(r == expected for r in results)


@needs_mcast
def test_real_bcast_many_iterations_no_crosstalk():
    def body(comm):
        acc = []
        for i in range(30):
            obj = i if comm.rank == 0 else None
            acc.append(comm.bcast(obj, root=0, impl="linear"))
        return acc

    results = run_threads(4, body)
    assert all(r == list(range(30)) for r in results)


# ---------------------------------------------------------------- barrier
@pytest.mark.parametrize("impl", ["mcast", "p2p"])
@needs_mcast
def test_real_barrier_synchronizes(impl):
    def body(comm):
        time.sleep(0.01 * comm.rank)       # staggered entry
        entered = time.monotonic()
        comm.barrier(impl=impl)
        left = time.monotonic()
        return (entered, left)

    n = 5
    results = run_threads(n, body)
    last_entry = max(e for e, _l in results)
    for _entered, left in results:
        assert left >= last_entry - 1e-4


@needs_mcast
def test_real_mixed_collectives():
    def body(comm):
        obj = "x" if comm.rank == 0 else None
        a = comm.bcast(obj, root=0, impl="binary")
        comm.barrier(impl="mcast")
        b = comm.allreduce(comm.rank, lambda x, y: x + y)
        comm.barrier(impl="p2p")
        g = comm.gather(comm.rank * 2, root=0)
        return (a, b, g)

    n = 4
    results = run_threads(n, body)
    total = n * (n - 1) // 2
    assert results[0] == ("x", total, [0, 2, 4, 6])
    for r in results[1:]:
        assert r == ("x", total, None)


@needs_mcast
def test_real_reduce_rank_order():
    def body(comm):
        return comm.reduce(str(comm.rank), lambda a, b: a + b, root=0)

    results = run_threads(5, body)
    assert results[0] == "01234"


@needs_mcast
def test_real_invalid_rank_raises():
    def body(comm):
        with pytest.raises(ValueError):
            comm.send("x", dest=99)
        return "ok"

    assert run_threads(2, body) == ["ok", "ok"]
