"""Edge cases across the substrate: ipstack, host, world, jitter."""


import pytest

from repro.mpi import MpiWorld
from repro.simnet import (SimError, build_cluster, quiet)
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH, VIA_SWITCH,
                                      NetParams)
from repro.simnet.frame import Frame, mcast_mac
from repro.simnet.topology import TOPOLOGIES


QUIET = quiet(FAST_ETHERNET_HUB)


def test_build_cluster_validates_inputs():
    with pytest.raises(ValueError):
        build_cluster(0, "hub")
    with pytest.raises(ValueError):
        build_cluster(2, "tokenring")
    assert TOPOLOGIES == ("hub", "switch")


def test_cluster_host_accessor():
    cl = build_cluster(3, "switch", params=QUIET)
    assert cl.n == 3
    assert cl.host(1).addr == 1


def test_ipstack_leave_without_join_rejected():
    cl = build_cluster(1, "hub", params=QUIET)
    with pytest.raises(SimError, match="without joining"):
        cl.hosts[0].ipstack.leave_group(mcast_mac(3))


def test_ipstack_join_requires_group_address():
    cl = build_cluster(1, "hub", params=QUIET)
    with pytest.raises(ValueError, match="not a multicast group"):
        cl.hosts[0].ipstack.join_group(5)


def test_ipstack_membership_refcount():
    cl = build_cluster(2, "hub", params=QUIET)
    h = cl.hosts[0]
    grp = mcast_mac(9)
    s1 = h.socket(100)
    s2 = h.socket(101)
    s1.join(grp)
    s2.join(grp)
    s1.close()
    assert h.ipstack.member_of(grp)    # s2 still joined
    s2.close()
    assert not h.ipstack.member_of(grp)


def test_igmp_frames_do_not_reach_sockets():
    cl = build_cluster(2, "hub", params=QUIET)
    grp = mcast_mac(11)
    rx = cl.hosts[1].socket(100)
    rx.join(grp)
    tx = cl.hosts[0].socket(101)
    tx.join(grp)            # emits an IGMP report the peer NIC accepts
    cl.sim.run()
    assert rx.queue_depth == 0   # the report is protocol, not user data


def test_non_ip_frame_to_ip_input_is_error():
    cl = build_cluster(1, "hub", params=QUIET)
    with pytest.raises(SimError, match="non-IP frame"):
        cl.hosts[0].ipstack.receive_frame(
            Frame(src=0, dst=0, size=10, payload="garbage"))


def test_duplicate_fragment_is_idempotent():
    """A duplicated fragment must not complete reassembly twice."""
    from repro.simnet.ip import Datagram, make_frames

    cl = build_cluster(2, "hub", params=QUIET)
    h1 = cl.hosts[1]
    rx = h1.socket(100)
    dgram = Datagram(src=0, src_port=101, dst=1, dst_port=100,
                     payload="dup", size=3000)
    frames = list(make_frames(QUIET, dgram))
    assert len(frames) == 3
    h1.ipstack.receive_frame(frames[0])
    h1.ipstack.receive_frame(frames[0])       # duplicate
    h1.ipstack.receive_frame(frames[1])
    assert rx.queue_depth == 0                # still incomplete
    h1.ipstack.receive_frame(frames[2])
    assert rx.queue_depth == 1                # exactly one delivery


def test_host_jitter_properties():
    cl = build_cluster(1, "hub", seed=3)      # default params: jitter on
    h = cl.hosts[0]
    samples = [h.jitter(100.0) for _ in range(200)]
    assert all(s > 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert 90.0 < mean < 110.0                # centred near the nominal
    assert len(set(samples)) > 100            # actually random
    # quiet params: exact
    cq = build_cluster(1, "hub", params=QUIET)
    assert cq.hosts[0].jitter(100.0) == 100.0
    assert cq.hosts[0].jitter(0.0) == 0.0


def test_world_ctx_allocation():
    cl = build_cluster(2, "switch", params=QUIET)
    world = MpiWorld(cl)
    a = world.alloc_ctx()
    base = world.alloc_ctx_range(3)
    b = world.alloc_ctx()
    assert a == 1 and base == 2 and b == 5
    with pytest.raises(ValueError):
        world.alloc_ctx_range(0)


def test_netparams_frames_for_via_preset():
    # VIA preset shares the wire constants: fragmentation unchanged.
    assert VIA_SWITCH.frames_for(5000) == \
        FAST_ETHERNET_SWITCH.frames_for(5000)
    assert VIA_SWITCH.udp_send_us < FAST_ETHERNET_SWITCH.udp_send_us


def test_netparams_derived_payloads():
    p = NetParams()
    assert p.max_udp_payload == 1500 - 20 - 8
    assert p.max_fragment_payload == 1500 - 20
    assert p.frames_for(p.max_udp_payload) == 1
    assert p.frames_for(p.max_udp_payload + 1) == 2


def test_stats_diff():
    from repro.simnet.stats import NetStats

    stats = NetStats()
    stats.record_send(100, "p2p")
    before = stats.snapshot()
    stats.record_send(200, "scout")
    stats.collisions += 2
    delta = stats.diff(before)
    assert delta["frames_sent"] == 1
    assert delta["collisions"] == 2
    assert delta["frames_by_kind"] == {"p2p": 0, "scout": 1}


def test_run_threads_validates_and_surfaces_errors():
    from repro.sockets import multicast_available, run_threads

    with pytest.raises(ValueError):
        run_threads(0, lambda comm: None)

    if not multicast_available():
        pytest.skip("no loopback multicast")

    def crasher(comm):
        if comm.rank == 1:
            raise RuntimeError("rank 1 exploded")
        return comm.rank

    with pytest.raises(RuntimeError, match="rank 1"):
        run_threads(2, crasher)
