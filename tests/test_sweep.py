"""The sweep engine's contracts: cartesian expansion, per-case seed
determinism (same JSON bit-for-bit across reruns and worker counts),
schema round-trip, and the baseline-diff edge cases behind
``make bench-gate`` (new series, removed series, regression,
improvement).  A synthetic area registered at module level keeps the
engine tests independent of the real benchmark areas (and visible to
forked worker processes)."""

import copy
import json
import multiprocessing
import zlib

import pytest

from repro.bench.cli import main
from repro.bench.sweep import (AreaSpec, Family, baseline_path,
                               case_key, case_seed, diff_docs,
                               dumps_canonical, default_workers,
                               expand, find_series, load_areas, metric,
                               register_area, run_area, run_meta,
                               SCHEMA)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# synthetic areas (module level: fork workers re-resolve by name)
# ---------------------------------------------------------------------------
def synth_grid_runner(scale, seed, size, mode):
    return {
        "frames_total": size // 100 + (7 if mode == "lossy" else 0),
        "latency_us_median": 500.0 + (seed % 97),
        "note": f"{mode}:{size}",
    }


def synth_single_runner(scale, seed):
    return {"frames_total": 1}


def _synth_families(scale):
    sizes = (100, 200) if scale == "gate" else (100, 200, 400)
    return [
        Family("grid", {"size": sizes, "mode": ("clean", "lossy")},
               synth_grid_runner),
        Family("single", {}, synth_single_runner),
    ]


def synth_post_lossy_costs_more(doc):
    for size in (100, 200):
        clean = metric(doc, "grid", "frames_total",
                       size=size, mode="clean")
        lossy = metric(doc, "grid", "frames_total",
                       size=size, mode="lossy")
        assert lossy > clean, (size, clean, lossy)


register_area(AreaSpec(
    name="synthtest",
    title="synthetic area exercising the sweep engine",
    families=_synth_families,
    postconditions=(synth_post_lossy_costs_more,),
))


def synth_failing_post(doc):
    raise AssertionError("reproduction criterion violated (on purpose)")


register_area(AreaSpec(
    name="synthtest-bad",
    title="synthetic area whose postcondition always fails",
    families=lambda scale: [Family("single", {}, synth_single_runner)],
    postconditions=(synth_failing_post,),
))


register_area(AreaSpec(
    name="synthtest-dup",
    title="synthetic area with colliding case keys",
    families=lambda scale: [
        Family("single", {}, synth_single_runner),
        Family("single", {}, synth_single_runner),
    ],
))


def synth_bad_metric_runner(scale, seed):
    return {"flag": True}


register_area(AreaSpec(
    name="synthtest-types",
    title="synthetic area returning a non-scalar metric",
    families=lambda scale: [
        Family("single", {}, synth_bad_metric_runner),
    ],
))


# ---------------------------------------------------------------------------
# expansion, keys, seeds
# ---------------------------------------------------------------------------
def test_expand_cartesian_product():
    cases = expand({"a": (1, 2), "b": ("x", "y", "z")})
    assert len(cases) == 6
    assert cases[0] == {"a": 1, "b": "x"}
    assert {frozenset(c.items()) for c in cases} == {
        frozenset({("a", i), ("b", s)})
        for i in (1, 2) for s in ("x", "y", "z")}


def test_expand_empty_axes_is_one_case():
    assert expand({}) == [{}]


def test_case_key_sorts_axes():
    assert case_key("fam", {"b": 2, "a": 1}) == "fam[a=1,b=2]"
    assert case_key("fam", {}) == "fam"


def test_case_seed_formula_and_distinctness():
    key = case_key("grid", {"size": 100, "mode": "clean"})
    expected = zlib.crc32(f"area:1:{key}".encode()) & 0x7FFFFFFF
    assert case_seed("area", 1, key) == expected
    assert 0 <= case_seed("area", 1, key) < 2 ** 31
    # distinct per area, base seed and key
    assert case_seed("area", 1, key) != case_seed("other", 1, key)
    assert case_seed("area", 1, key) != case_seed("area", 2, key)
    assert case_seed("area", 1, key) != case_seed("area", 1, "grid")


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.delenv("REPRO_SWEEP_WORKERS")
    assert default_workers() >= 1


# ---------------------------------------------------------------------------
# run_area: document shape, determinism, validation
# ---------------------------------------------------------------------------
def test_run_area_document_shape():
    doc = run_area("synthtest", workers=1)
    assert doc["schema"] == SCHEMA
    assert doc["area"] == "synthtest"
    assert doc["scale"] == "gate"
    assert doc["base_seed"] == 1
    assert set(doc["meta"]) == {"python", "platform", "git_commit",
                                "git_branch", "git_dirty"}
    keys = [s["key"] for s in doc["series"]]
    assert keys == sorted(keys)
    assert len(keys) == 5          # 2 sizes x 2 modes + 1 axis-free
    entry = find_series(doc, "grid", size=100, mode="lossy")
    assert entry["axes"] == {"size": 100, "mode": "lossy"}
    assert entry["seed"] == case_seed("synthtest", 1, entry["key"])
    assert entry["metrics"]["note"] == "lossy:100"


def test_run_area_full_scale_widens_grid():
    doc = run_area("synthtest", scale="full", workers=1)
    assert doc["scale"] == "full"
    assert len(doc["series"]) == 7  # 3 sizes x 2 modes + 1


def test_run_area_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        run_area("synthtest", scale="huge")


def test_run_area_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="duplicate case keys"):
        run_area("synthtest-dup", workers=1)


def test_run_area_rejects_non_scalar_metric():
    with pytest.raises(TypeError, match="must be int, float or str"):
        run_area("synthtest-types", workers=1)


def test_run_area_postconditions_gate_the_document():
    with pytest.raises(AssertionError, match="on purpose"):
        run_area("synthtest-bad", workers=1)
    # check=False collects the document without judging it
    doc = run_area("synthtest-bad", workers=1, check=False)
    assert doc["series"][0]["metrics"] == {"frames_total": 1}


def test_rerun_is_bit_for_bit_identical():
    a = dumps_canonical(run_area("synthtest", workers=1))
    b = dumps_canonical(run_area("synthtest", workers=1))
    assert a == b


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_pool_matches_inline_bit_for_bit():
    inline = dumps_canonical(run_area("synthtest", workers=1))
    pooled = dumps_canonical(run_area("synthtest", workers=2))
    assert inline == pooled


def test_base_seed_changes_every_case_seed():
    one = run_area("synthtest", base_seed=1, workers=1)
    two = run_area("synthtest", base_seed=2, workers=1)
    seeds1 = {s["key"]: s["seed"] for s in one["series"]}
    seeds2 = {s["key"]: s["seed"] for s in two["series"]}
    assert seeds1.keys() == seeds2.keys()
    assert all(seeds1[k] != seeds2[k] for k in seeds1)


# ---------------------------------------------------------------------------
# serialization round-trip + helpers
# ---------------------------------------------------------------------------
def test_schema_round_trip():
    doc = run_area("synthtest", workers=1)
    assert json.loads(dumps_canonical(doc)) == doc
    assert dumps_canonical(doc).endswith("\n")


def test_run_meta_has_no_timestamps():
    meta = run_meta()
    assert meta == run_meta()      # stable within a session
    assert not any("time" in k or "date" in k for k in meta)


def test_find_series_and_metric_errors():
    doc = run_area("synthtest", workers=1)
    with pytest.raises(KeyError, match="no series"):
        find_series(doc, "grid", size=999, mode="clean")
    with pytest.raises(KeyError, match="no metric"):
        metric(doc, "single", "nonexistent")


def test_registered_real_areas_present():
    areas = load_areas()
    assert {"segmented-bcast", "fabric-scaling",
            "deep-fabric"} <= set(areas)
    assert baseline_path("deep-fabric").name == "BENCH_deep-fabric.json"


# ---------------------------------------------------------------------------
# diff_docs: the bench-gate edge cases
# ---------------------------------------------------------------------------
@pytest.fixture()
def base_doc():
    return run_area("synthtest", workers=1)


def test_diff_identical_docs_ok(base_doc):
    report = diff_docs(base_doc, copy.deepcopy(base_doc))
    assert report.ok
    assert report.errors == []
    assert report.matched == len(base_doc["series"])


def test_diff_identity_mismatch(base_doc):
    fresh = copy.deepcopy(base_doc)
    fresh["scale"] = "full"
    report = diff_docs(base_doc, fresh)
    assert any("scale mismatch" in e for e in report.errors)


def test_diff_removed_series_is_error(base_doc):
    fresh = copy.deepcopy(base_doc)
    del fresh["series"][0]
    report = diff_docs(base_doc, fresh)
    assert not report.ok
    assert any("removed series" in e for e in report.errors)


def test_diff_new_series_is_error(base_doc):
    fresh = copy.deepcopy(base_doc)
    extra = copy.deepcopy(fresh["series"][0])
    extra["key"] = "grid[mode=clean,size=9999]"
    fresh["series"].append(extra)
    report = diff_docs(base_doc, fresh)
    assert not report.ok
    assert any("new series" in e for e in report.errors)


def test_diff_frame_regression_is_exact(base_doc):
    fresh = copy.deepcopy(base_doc)
    fresh["series"][0]["metrics"]["frames_total"] += 1
    report = diff_docs(base_doc, fresh)
    assert not report.ok
    assert any("regressed exactly" in e for e in report.errors)


def test_diff_frame_improvement_is_note_not_error(base_doc):
    fresh = copy.deepcopy(base_doc)
    fresh["series"][0]["metrics"]["frames_total"] -= 1
    report = diff_docs(base_doc, fresh)
    assert report.ok
    assert any("improved" in n for n in report.improvements)


def test_diff_latency_within_band_ok(base_doc):
    fresh = copy.deepcopy(base_doc)
    entry = find_series(fresh, "grid", size=100, mode="clean")
    entry["metrics"]["latency_us_median"] *= 1.10
    report = diff_docs(base_doc, fresh)
    assert report.ok and not report.improvements


def test_diff_artificially_slowed_run_fails(base_doc):
    # the ISSUE acceptance criterion: slow one case past the band
    fresh = copy.deepcopy(base_doc)
    entry = find_series(fresh, "grid", size=100, mode="clean")
    entry["metrics"]["latency_us_median"] *= 3.0
    report = diff_docs(base_doc, fresh)
    assert not report.ok
    assert any("regressed beyond band" in e for e in report.errors)


def test_diff_latency_big_improvement_is_note(base_doc):
    fresh = copy.deepcopy(base_doc)
    entry = find_series(fresh, "grid", size=100, mode="clean")
    entry["metrics"]["latency_us_median"] *= 0.2
    report = diff_docs(base_doc, fresh)
    assert report.ok
    assert any("improved" in n for n in report.improvements)


def test_diff_string_metric_compares_exactly(base_doc):
    fresh = copy.deepcopy(base_doc)
    find_series(fresh, "grid", size=100,
                mode="clean")["metrics"]["note"] = "tampered"
    report = diff_docs(base_doc, fresh)
    assert any("changed" in e for e in report.errors)


def test_diff_vanished_and_new_metric(base_doc):
    fresh = copy.deepcopy(base_doc)
    metrics = fresh["series"][0]["metrics"]
    del metrics["frames_total"]
    metrics["frames_other"] = 2
    report = diff_docs(base_doc, fresh)
    assert any("vanished" in e for e in report.errors)
    assert any("new metric" in e for e in report.errors)


# ---------------------------------------------------------------------------
# the CLI: write -> check round trip (what make bench-gate runs)
# ---------------------------------------------------------------------------
def test_cli_sweep_write_then_check_round_trip(tmp_path, capsys):
    argv = ["sweep", "synthtest", "--results-dir", str(tmp_path),
            "--workers", "1"]
    assert main(argv) == 0
    json_path = tmp_path / "BENCH_synthtest.json"
    md_path = tmp_path / "synthtest.md"
    assert json_path.exists() and md_path.exists()
    doc = json.loads(json_path.read_text())
    assert doc["schema"] == SCHEMA

    assert main(argv + ["--check"]) == 0
    out = capsys.readouterr().out
    assert "5 series within tolerance" in out


def test_cli_sweep_check_missing_baseline_fails(tmp_path, capsys):
    assert main(["sweep", "synthtest", "--results-dir",
                 str(tmp_path), "--workers", "1", "--check"]) == 1
    assert "no committed baseline" in capsys.readouterr().err


def test_cli_sweep_check_catches_tampered_baseline(tmp_path, capsys):
    argv = ["sweep", "synthtest", "--results-dir", str(tmp_path),
            "--workers", "1"]
    assert main(argv) == 0
    json_path = tmp_path / "BENCH_synthtest.json"
    doc = json.loads(json_path.read_text())
    # pretend history was cheaper: the fresh run now "regresses"
    entry = find_series(doc, "grid", size=100, mode="clean")
    entry["metrics"]["frames_total"] -= 1
    entry["metrics"]["latency_us_median"] = 10.0
    json_path.write_text(dumps_canonical(doc))
    assert main(argv + ["--check"]) == 1
    err = capsys.readouterr().err
    assert "regressed exactly" in err
    assert "regressed beyond band" in err


def test_cli_sweep_check_flags_stale_markdown(tmp_path, capsys):
    argv = ["sweep", "synthtest", "--results-dir", str(tmp_path),
            "--workers", "1"]
    assert main(argv) == 0
    md_path = tmp_path / "synthtest.md"
    md_path.write_text(md_path.read_text() + "\nstale edit\n")
    assert main(argv + ["--check"]) == 1
    assert "does not match the committed baseline" in \
        capsys.readouterr().err


def test_cli_sweep_unknown_area_exits_2(capsys):
    assert main(["sweep", "no-such-area"]) == 2
    assert "unknown area" in capsys.readouterr().err


def test_cli_stray_positional_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
