"""Wire-timeline tool and trace module tests."""


from repro.bench.timeline import (WireEvent, ascii_timeline,
                                  kinds_in_order, record_timeline)
from repro.simnet import Frame, Simulator, NetStats, Tracer
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_HUB

QUIET = quiet(FAST_ETHERNET_HUB)
QUIESCE = 50_000.0


def _one_bcast(size, impl):
    def main(env):
        obj = bytes(size) if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, QUIESCE - env.sim.now))
        obj = yield from env.comm.bcast(obj, root=0)
        return len(obj)

    return record_timeline(5, main, topology="hub", params=QUIET,
                           collectives={"bcast": impl},
                           skip_before_us=QUIESCE)


def test_scouts_strictly_precede_multicast_payload():
    """The central protocol order: the root multicasts only after all
    scouts are on the wire."""
    events = _one_bcast(3000, "mcast-binary")
    order = kinds_in_order(events)
    assert order.count("scout") == 4          # N-1 scouts
    assert order.count("mcast-data") == 3     # 3008 B -> 3 frames
    last_scout = max(i for i, k in enumerate(order) if k == "scout")
    first_data = min(i for i, k in enumerate(order) if k == "mcast-data")
    assert last_scout < first_data


def test_mpich_timeline_has_only_p2p_frames():
    events = _one_bcast(3000, "p2p-binomial")
    kinds = set(kinds_in_order(events))
    assert kinds == {"p2p"}
    assert len(events) == 3 * 4               # 3 frames x (N-1) copies


def test_wire_events_non_overlapping_on_hub():
    """One collision domain: successful transmissions never overlap."""
    events = _one_bcast(4000, "mcast-binary")
    ordered = sorted(events, key=lambda e: e.start_us)
    for a, b in zip(ordered, ordered[1:]):
        assert b.start_us >= a.start_us + a.duration_us - 1e-6


def test_ascii_timeline_renders():
    events = [WireEvent(0.0, 10.0, "scout"),
              WireEvent(20.0, 40.0, "mcast-data")]
    art = ascii_timeline(events, width=40, title="demo")
    assert "demo" in art and "scout" in art and "mcast-data" in art
    assert "#" in art


def test_ascii_timeline_empty():
    assert ascii_timeline([]) == "(no wire activity)"


def test_tracer_install_uninstall():
    """The tracer rides the recorder hook slot (no monkey-patching):
    install sets ``stats.recorder``, events carry real frame context,
    uninstall clears the slot while stats keep counting."""
    sim = Simulator()
    stats = NetStats()
    tracer = Tracer(sim, stats).install()
    assert stats.recorder is tracer

    def fire(frame):
        # what every device-level send site does: count, then hand the
        # frame to the recorder behind the single-branch guard
        stats.record_send(frame.wire_size, frame.kind)
        rec = stats.recorder
        if rec is not None:
            rec.frame_sent(sim.now, frame, "test")

    data = Frame(src=1, dst=2, size=100, payload=None, kind="data")
    scout = Frame(src=3, dst=0, size=20, payload=None, kind="scout")
    fire(data)
    sim.schedule_call(5.0, fire, scout)
    sim.run()
    assert len(tracer.events) == 2
    assert tracer.first_time("scout") == 5.0
    assert tracer.of_kind("data")[0].size == data.wire_size
    assert tracer.of_kind("data")[0].src == 1
    assert tracer.of_kind("scout")[0].dst == 0
    tracer.uninstall()
    assert stats.recorder is None
    fire(data)
    assert len(tracer.events) == 2            # no longer recording
    assert stats.frames_sent == 3             # but stats still count


def test_tracer_note_full_addressing():
    sim = Simulator()
    tracer = Tracer(sim, NetStats())
    tracer.note("release", src=0, dst=99, size=64)
    assert tracer.events[0].dst == 99
