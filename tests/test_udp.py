"""UDP socket semantics: buffering, posted-only mode, drops, timeouts.

These tests pin down the paper's §2 unreliability model: a multicast
datagram reaching a host with no posted receive (posted-only mode) or no
buffer space (buffered mode) is silently dropped and *counted*.
"""

import pytest

from repro.simnet import build_cluster, quiet
from repro.simnet.calibration import FAST_ETHERNET_HUB, FAST_ETHERNET_SWITCH
from repro.simnet.ipstack import PortInUse


def make2(topology="hub", **kw):
    params = quiet(FAST_ETHERNET_HUB if topology == "hub"
                   else FAST_ETHERNET_SWITCH)
    cl = build_cluster(2, topology, params=params, **kw)
    return cl, cl.sim, cl.hosts[0], cl.hosts[1]


def test_buffered_socket_queues_early_datagram():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100)
    tx = h0.socket(101)
    got = []

    def sender():
        yield from tx.sendto("early", 32, dst=1, dst_port=100)

    def receiver():
        yield sim.timeout(5000)         # recv posted long after arrival
        d = yield from rx.recv()
        got.append(d.payload)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got == ["early"]
    assert cl.stats.drops_not_posted == 0


def test_posted_only_socket_drops_unposted():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100, posted_only=True)
    tx = h0.socket(101)
    got = []

    def sender():
        yield from tx.sendto("lost", 32, dst=1, dst_port=100)
        yield sim.timeout(1000)
        yield from tx.sendto("caught", 32, dst=1, dst_port=100)

    def receiver():
        yield sim.timeout(500)          # too late for the first datagram
        d = yield from rx.recv()
        got.append(d.payload)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got == ["caught"]
    assert cl.stats.drops_not_posted == 1
    assert rx.rx_dropped == 1


def test_posted_before_arrival_catches_datagram():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100, posted_only=True)
    tx = h0.socket(101)
    got = []

    def receiver():
        d = yield from rx.recv()        # posted at t=0
        got.append(d.payload)

    def sender():
        yield sim.timeout(200)
        yield from tx.sendto("ok", 32, dst=1, dst_port=100)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert got == ["ok"]
    assert cl.stats.drops_not_posted == 0


def test_buffer_overrun_drops_and_counts():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100, buffer_bytes=100)
    tx = h0.socket(101)

    def sender():
        for i in range(4):
            yield from tx.sendto(i, 40, dst=1, dst_port=100)

    sim.process(sender())
    sim.run()
    # 100-byte buffer holds two 40-byte datagrams; the rest drop.
    assert rx.queue_depth == 2
    assert cl.stats.drops_buffer_full == 2


def test_recv_timeout_returns_none():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100)
    out = []

    def receiver():
        d = yield from rx.recv(timeout=250.0)
        out.append(d)

    sim.process(receiver())
    sim.run()
    assert out == [None]
    assert sim.now == pytest.approx(250.0)


def test_recv_timeout_cancels_posted_receive():
    cl, sim, h0, h1 = make2()
    rx = h1.socket(100, posted_only=True)
    tx = h0.socket(101)
    out = []

    def receiver():
        d = yield from rx.recv(timeout=100.0)
        out.append(d)

    def sender():
        yield sim.timeout(500)
        yield from tx.sendto("late", 16, dst=1, dst_port=100)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert out == [None]
    # the cancelled post no longer catches: the late datagram is dropped
    assert cl.stats.drops_not_posted == 1


def test_port_conflict_rejected():
    cl, sim, h0, h1 = make2()
    h0.socket(100)
    with pytest.raises(PortInUse):
        h0.socket(100)


def test_ephemeral_ports_unique():
    cl, sim, h0, h1 = make2()
    s1 = h0.socket()
    s2 = h0.socket()
    assert s1.port != s2.port


def test_close_unbinds_and_leaves_groups():
    from repro.simnet.frame import mcast_mac

    cl, sim, h0, h1 = make2()
    grp = mcast_mac(1000)
    s = h1.socket(100)
    s.join(grp)
    sim.run()
    assert h1.ipstack.member_of(grp)
    s.close()
    assert not h1.ipstack.member_of(grp)
    # port is free again
    h1.socket(100)


def test_multicast_needs_socket_join_not_just_nic():
    """Two sockets on one port cannot exist; but a socket bound to the
    right port that did NOT join the group must not receive."""
    cl, sim, h0, h1 = make2()
    from repro.simnet.frame import mcast_mac

    grp = mcast_mac(1001)
    rx = h1.socket(100)                 # bound, not joined
    # Make the NIC accept the frame anyway (another socket joined).
    other = h1.socket(101)
    other.join(grp)
    tx = h0.socket(102)

    def sender():
        yield sim.timeout(50)
        yield from tx.sendto("grp-data", 32, dst=grp, dst_port=100)

    sim.process(sender())
    sim.run()
    assert rx.queue_depth == 0
    assert cl.stats.drops_no_listener >= 1


def test_mcast_loop_delivers_local_copy():
    from repro.simnet.frame import mcast_mac

    cl, sim, h0, h1 = make2()
    grp = mcast_mac(1002)
    sock = h0.socket(100)
    sock.join(grp)
    got = []

    def run():
        yield from sock.sendto("self", 16, dst=grp, dst_port=100)
        d = yield from sock.recv()
        got.append(d.payload)

    sim.process(run())
    sim.run()
    assert got == ["self"]


def test_mcast_loop_off_suppresses_local_copy():
    from repro.simnet.frame import mcast_mac

    cl, sim, h0, h1 = make2()
    grp = mcast_mac(1003)
    sock = h0.socket(100, mcast_loop=False)
    sock.join(grp)
    got = []

    def run():
        yield from sock.sendto("self", 16, dst=grp, dst_port=100)
        d = yield from sock.recv(timeout=2000)
        got.append(d)

    sim.process(run())
    sim.run()
    assert got == [None]


def test_closed_socket_rejects_operations():
    from repro.simnet.udp import SocketClosed

    cl, sim, h0, h1 = make2()
    s = h0.socket(100)
    s.close()
    with pytest.raises(SocketClosed):
        s.post_recv()


def test_fragmented_datagram_reassembles():
    """A 5000-byte datagram crosses as 4 frames and arrives whole."""
    cl, sim, h0, h1 = make2(topology="switch")
    rx = h1.socket(100)
    tx = h0.socket(101)
    got = []

    def receiver():
        d = yield from rx.recv()
        got.append((d.payload, d.size))

    def sender():
        yield from tx.sendto("big", 5000, dst=1, dst_port=100)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert got == [("big", 5000)]
    assert cl.stats.frames_sent == 4  # paper's floor(M/T)+1 with M=5000


def test_close_fails_pending_posted_recv():
    """Regression: closing a socket used to leave posted receives
    pending forever, surfacing as an end-of-sim DeadlockError instead of
    a clear error at the blocked receiver."""
    from repro.simnet.udp import SocketClosed

    cl, sim, h0, h1 = make2()
    rx = h1.socket(100)
    caught = []

    def receiver():
        try:
            yield from rx.recv()
        except SocketClosed as exc:
            caught.append(exc)

    def closer():
        yield sim.timeout(100)
        rx.close()

    sim.process(receiver())
    sim.process(closer())
    sim.run()                        # DeadlockError here before the fix
    assert len(caught) == 1


def test_close_fails_every_pending_descriptor():
    from repro.simnet.udp import SocketClosed

    cl, sim, h0, h1 = make2()
    rx = h1.socket(100, posted_only=True)
    posted = rx.post_recv_many(3)
    rx.close()
    sim.run()
    assert all(ev.triggered and not ev.ok for ev in posted)
    assert all(isinstance(ev._value, SocketClosed) for ev in posted)


def test_post_recv_many_and_cancel_recv_all():
    """Batched descriptors fill in posting order; cancel_recv_all
    withdraws exactly the untriggered ones."""
    cl, sim, h0, h1 = make2(topology="switch")
    rx = h1.socket(100, posted_only=True)
    tx = h0.socket(101)
    posted = rx.post_recv_many(3)

    def sender():
        yield from tx.sendto("one", 32, dst=1, dst_port=100)

    sim.process(sender())
    sim.run()
    assert posted[0].triggered and posted[0].value.payload == "one"
    assert not posted[1].triggered and not posted[2].triggered

    rx.cancel_recv_all(posted)

    def sender2():
        yield from tx.sendto("two", 32, dst=1, dst_port=100)

    sim.process(sender2())
    sim.run()
    # nothing was posted any more: the datagram is a counted drop
    assert not posted[1].triggered
    assert cl.stats.drops_not_posted == 1


def test_posted_depth_and_high_water_track_the_descriptor_ring():
    """posted_depth reports live descriptors; posted_high_water records
    the largest ring ever held — what a budget-limited receiver's
    sliding window in the segmented collectives must stay under."""
    cl, sim, h0, h1 = make2(topology="switch")
    rx = h1.socket(100, posted_only=True)
    tx = h0.socket(101)
    assert rx.posted_depth == 0 and rx.posted_high_water == 0

    posted = rx.post_recv_many(3)
    assert rx.posted_depth == 3 and rx.posted_high_water == 3

    def sender():
        yield from tx.sendto("fill", 32, dst=1, dst_port=100)

    sim.process(sender())
    sim.run()
    assert rx.posted_depth == 2             # one descriptor consumed
    assert rx.posted_high_water == 3        # high water is sticky

    rx.cancel_recv_all(posted)
    assert rx.posted_depth == 0
    assert rx.posted_high_water == 3
